//! Fault injection at the cluster tier: scheduled device death, revival,
//! graceful drain, and link degradation on the virtual timeline.
//!
//! A [`FaultPlan`] is a list of [`FaultEvent`]s installed on a
//! [`Cluster`](crate::Cluster) via
//! [`with_fault_plan`](crate::Cluster::with_fault_plan). At serve time the
//! plan is validated against the fleet, its events are scheduled into the
//! same virtual-time [`EventQueue`](crate::event::EventQueue) that drives
//! arrivals and tile completions, and the cluster event loop reacts when
//! they fire:
//!
//! * **[`Kill`](FaultKind::Kill)** — the device vanishes mid-flight: its
//!   running requests are abandoned (their progress counted as lost work),
//!   its queued requests are displaced, and both requeue through the
//!   routing tier with the dead device in their per-request exclusion set.
//!   Its kernel store is wiped (a revived device comes back cold) and the
//!   [`Replicator`](crate::ReplicationConfig)'s replicas re-home to a
//!   surviving holder.
//! * **[`Drain`](FaultKind::Drain)** — graceful: the device stops admitting
//!   (it leaves the routing load index and every policy skips it) but
//!   running work finishes; queued-but-not-started requests requeue
//!   elsewhere. The rolling-upgrade primitive.
//! * **[`Revive`](FaultKind::Revive)** / **[`Undrain`](FaultKind::Undrain)**
//!   — the device rejoins routing (cold after a kill, warm after a drain);
//!   its downtime is charged to the per-device availability metric.
//! * **[`DegradeLinks`](FaultKind::DegradeLinks)** — the inter-device link
//!   is slowed by a multiplier
//!   ([`TransferModel::degraded`](crate::TransferModel::degraded)): peer
//!   transfers get pricier and acquisition shifts toward host loads, in
//!   both the charged costs and the completion estimates routing compares.
//!
//! With no plan installed (the default) none of this code runs and the
//! cluster is bitwise identical to the pre-fault runtime — pinned by the
//! `tests/runtime_equivalence.rs` proptests. The zero-loss invariant under
//! faults — every admitted request appears exactly once in outcomes or
//! rejects as long as one device survives — is pinned by
//! `tests/fault_tolerance.rs`.

pub mod scenario;

use crate::error::RuntimeError;

/// What a scheduled fault does to the fleet when it fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The device dies abruptly: running work is lost and requeued, the
    /// kernel store is wiped, routing excludes it until a `Revive`.
    Kill {
        /// The device that dies.
        device: usize,
    },
    /// A killed device rejoins the fleet, cold (empty kernel store).
    Revive {
        /// The device that comes back.
        device: usize,
    },
    /// The device stops admitting new work but finishes what is running;
    /// queued-but-not-started requests requeue elsewhere.
    Drain {
        /// The device being drained.
        device: usize,
    },
    /// A drained device admits again (its kernel store stayed warm).
    Undrain {
        /// The device that rejoins admission.
        device: usize,
    },
    /// The inter-device link is slowed by this factor from now on (`1.0`
    /// restores full speed). Applies to transfer pricing fleet-wide.
    DegradeLinks {
        /// Multiplier on per-hop latency and per-byte link cost.
        multiplier: f64,
    },
}

impl FaultKind {
    /// The device the fault targets (`None` for fleet-wide faults).
    pub fn device(&self) -> Option<usize> {
        match *self {
            FaultKind::Kill { device }
            | FaultKind::Revive { device }
            | FaultKind::Drain { device }
            | FaultKind::Undrain { device } => Some(device),
            FaultKind::DegradeLinks { .. } => None,
        }
    }

    /// The fault's export label (what trace spans carry).
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Kill { .. } => "kill",
            FaultKind::Revive { .. } => "revive",
            FaultKind::Drain { .. } => "drain",
            FaultKind::Undrain { .. } => "undrain",
            FaultKind::DegradeLinks { .. } => "degrade-links",
        }
    }
}

/// One scheduled fault on the virtual timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Virtual time at which the fault fires, microseconds.
    pub time_us: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// A schedule of faults to inject into a serve, built fluently:
///
/// ```
/// use overlay_runtime::FaultPlan;
/// let plan = FaultPlan::new()
///     .kill(500.0, 2)
///     .degrade_links(800.0, 4.0)
///     .revive(1500.0, 2);
/// assert_eq!(plan.events().len(), 3);
/// ```
///
/// Events may be added in any order; the serve sorts them by time (stable,
/// so same-instant faults apply in insertion order). An empty plan is
/// indistinguishable from no plan at all.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an arbitrary fault event.
    #[must_use]
    pub fn with_event(mut self, time_us: f64, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { time_us, kind });
        self
    }

    /// Kills `device` at `time_us`.
    #[must_use]
    pub fn kill(self, time_us: f64, device: usize) -> Self {
        self.with_event(time_us, FaultKind::Kill { device })
    }

    /// Revives `device` at `time_us` (cold store).
    #[must_use]
    pub fn revive(self, time_us: f64, device: usize) -> Self {
        self.with_event(time_us, FaultKind::Revive { device })
    }

    /// Starts a graceful drain of `device` at `time_us`.
    #[must_use]
    pub fn drain(self, time_us: f64, device: usize) -> Self {
        self.with_event(time_us, FaultKind::Drain { device })
    }

    /// Ends the drain of `device` at `time_us`.
    #[must_use]
    pub fn undrain(self, time_us: f64, device: usize) -> Self {
        self.with_event(time_us, FaultKind::Undrain { device })
    }

    /// Sets the fleet-wide link multiplier at `time_us`.
    #[must_use]
    pub fn degrade_links(self, time_us: f64, multiplier: f64) -> Self {
        self.with_event(time_us, FaultKind::DegradeLinks { multiplier })
    }

    /// Appends every event of `other` (compose coordinated scripts).
    #[must_use]
    pub fn merged(mut self, other: FaultPlan) -> Self {
        self.events.extend(other.events);
        self
    }

    /// A coordinated rolling-upgrade script: each of `devices` is drained
    /// in turn (`stagger_us` apart, starting at `start_us`), held down for
    /// `down_us`, then undrained — at most one device out at a time when
    /// `stagger_us >= down_us`.
    #[must_use]
    pub fn rolling_upgrade(devices: usize, start_us: f64, down_us: f64, stagger_us: f64) -> Self {
        let mut plan = FaultPlan::new();
        for device in 0..devices {
            let at = start_us + device as f64 * stagger_us;
            plan = plan.drain(at, device).undrain(at + down_us, device);
        }
        plan
    }

    /// A device blip: `device` dies at `at_us` and revives `down_us` later.
    #[must_use]
    pub fn blip(device: usize, at_us: f64, down_us: f64) -> Self {
        FaultPlan::new()
            .kill(at_us, device)
            .revive(at_us + down_us, device)
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Validates the plan against a fleet of `devices` and returns its
    /// events sorted by time (stable: same-instant faults keep insertion
    /// order). Rejects non-finite or negative times, device targets outside
    /// the fleet, and non-positive or non-finite link multipliers.
    pub(crate) fn validated(&self, devices: usize) -> Result<Vec<FaultEvent>, RuntimeError> {
        for event in &self.events {
            if !event.time_us.is_finite() || event.time_us < 0.0 {
                return Err(RuntimeError::InvalidFaultPlan {
                    reason: format!(
                        "{} fault at non-finite or negative time {} us",
                        event.kind.label(),
                        event.time_us
                    ),
                });
            }
            if let Some(device) = event.kind.device() {
                if device >= devices {
                    return Err(RuntimeError::InvalidFaultPlan {
                        reason: format!(
                            "{} targets device {device} but the cluster has {devices}",
                            event.kind.label()
                        ),
                    });
                }
            }
            if let FaultKind::DegradeLinks { multiplier } = event.kind {
                if !multiplier.is_finite() || multiplier <= 0.0 {
                    return Err(RuntimeError::InvalidFaultPlan {
                        reason: format!("link multiplier {multiplier} must be finite and > 0"),
                    });
                }
            }
        }
        let mut events = self.events.clone();
        events.sort_by(|a, b| a.time_us.total_cmp(&b.time_us));
        Ok(events)
    }
}

/// Per-serve fault state: the validated schedule, the live fleet flags, and
/// the availability/requeue accounting the cluster loop maintains as faults
/// fire. Rebuilt at the start of every faulty serve.
#[derive(Debug)]
pub(crate) struct FaultState {
    /// The validated, time-sorted schedule.
    pub(crate) events: Vec<FaultEvent>,
    /// Per device: not currently killed.
    pub(crate) alive: Vec<bool>,
    /// Per device: currently draining (alive but not admitting).
    pub(crate) draining: Vec<bool>,
    /// Fleet-wide link slowdown currently in force.
    pub(crate) link_multiplier: f64,
    /// Per device: when the current unavailability window opened.
    down_since: Vec<Option<f64>>,
    /// Per device: accumulated closed unavailability windows, microseconds.
    unavailable_us: Vec<f64>,
    /// Per device: kills + drains that hit it.
    pub(crate) faults: Vec<usize>,
    /// Per device: requests displaced off it (queued or running).
    pub(crate) requeues: Vec<usize>,
    /// Per device: virtual microseconds of started-but-abandoned work.
    pub(crate) lost_work_us: Vec<f64>,
}

impl FaultState {
    pub(crate) fn new(events: Vec<FaultEvent>, devices: usize) -> Self {
        FaultState {
            events,
            alive: vec![true; devices],
            draining: vec![false; devices],
            link_multiplier: 1.0,
            down_since: vec![None; devices],
            unavailable_us: vec![0.0; devices],
            faults: vec![0; devices],
            requeues: vec![0; devices],
            lost_work_us: vec![0.0; devices],
        }
    }

    /// Whether `device` currently admits routed work.
    pub(crate) fn available(&self, device: usize) -> bool {
        self.alive[device] && !self.draining[device]
    }

    /// Applies fault `index` of the schedule at virtual time `now_us`,
    /// flipping the fleet flags and the availability accounting. The caller
    /// (the cluster loop) performs the structural reaction — requeues,
    /// store wipes, load-index surgery — based on the returned kind.
    pub(crate) fn apply(&mut self, index: usize, now_us: f64) -> FaultKind {
        let kind = self.events[index].kind;
        match kind {
            FaultKind::Kill { device } => {
                self.alive[device] = false;
                self.faults[device] += 1;
            }
            FaultKind::Revive { device } => {
                self.alive[device] = true;
                self.draining[device] = false;
            }
            FaultKind::Drain { device } => {
                self.draining[device] = true;
                self.faults[device] += 1;
            }
            FaultKind::Undrain { device } => {
                self.draining[device] = false;
            }
            FaultKind::DegradeLinks { multiplier } => {
                self.link_multiplier = multiplier;
            }
        }
        if let Some(device) = kind.device() {
            self.note_transition(device, now_us);
        }
        kind
    }

    /// Opens or closes the device's unavailability window after a flag
    /// flip. Idempotent for same-state repeats (killing a dead device or
    /// draining a drained one extends the same window).
    fn note_transition(&mut self, device: usize, now_us: f64) {
        if self.available(device) {
            if let Some(since) = self.down_since[device].take() {
                self.unavailable_us[device] += (now_us - since).max(0.0);
            }
        } else if self.down_since[device].is_none() {
            self.down_since[device] = Some(now_us);
        }
    }

    /// The device's total unavailable time by the end of a serve spanning
    /// `makespan_us` (closing any still-open window).
    pub(crate) fn unavailable_total_us(&self, device: usize, makespan_us: f64) -> f64 {
        let open = self.down_since[device]
            .map(|since| (makespan_us - since).max(0.0))
            .unwrap_or(0.0);
        self.unavailable_us[device] + open
    }

    /// The fraction of the serve's makespan the device was admitting work
    /// (1.0 for a zero-length serve, clamped to [0, 1]).
    pub(crate) fn availability(&self, device: usize, makespan_us: f64) -> f64 {
        if makespan_us <= 0.0 {
            return 1.0;
        }
        (1.0 - self.unavailable_total_us(device, makespan_us) / makespan_us).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_build_fluently_and_validate_sorted() {
        let plan = FaultPlan::new()
            .revive(900.0, 1)
            .kill(100.0, 1)
            .degrade_links(400.0, 8.0);
        assert_eq!(plan.events().len(), 3);
        assert!(!plan.is_empty());
        let events = plan.validated(2).expect("valid plan");
        assert!((events[0].time_us, events[1].time_us, events[2].time_us) == (100.0, 400.0, 900.0));
        assert!(matches!(events[0].kind, FaultKind::Kill { device: 1 }));
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn validation_rejects_bad_times_devices_and_multipliers() {
        for (plan, needle) in [
            (FaultPlan::new().kill(-1.0, 0), "negative time"),
            (FaultPlan::new().kill(f64::NAN, 0), "non-finite"),
            (FaultPlan::new().drain(5.0, 9), "device 9"),
            (FaultPlan::new().degrade_links(5.0, 0.0), "multiplier"),
            (
                FaultPlan::new().degrade_links(5.0, f64::INFINITY),
                "multiplier",
            ),
        ] {
            let err = plan.validated(4).expect_err("must reject");
            assert!(err.to_string().contains(needle), "{err} lacks {needle:?}");
        }
    }

    #[test]
    fn scripts_compose_rolling_upgrades_and_blips() {
        let upgrade = FaultPlan::rolling_upgrade(3, 100.0, 50.0, 200.0);
        assert_eq!(upgrade.events().len(), 6);
        let events = upgrade.validated(3).unwrap();
        // Drain/undrain alternate and at most one device is out at a time.
        assert!(matches!(events[0].kind, FaultKind::Drain { device: 0 }));
        assert!(matches!(events[1].kind, FaultKind::Undrain { device: 0 }));
        assert!(matches!(events[2].kind, FaultKind::Drain { device: 1 }));
        let blip = FaultPlan::blip(2, 300.0, 75.0);
        let merged = upgrade.merged(blip);
        assert_eq!(merged.events().len(), 8);
        assert!(merged.validated(2).is_err(), "blip device out of range");
    }

    #[test]
    fn fault_state_tracks_flags_and_availability_windows() {
        let plan = FaultPlan::new()
            .kill(100.0, 0)
            .drain(100.0, 1)
            .revive(300.0, 0)
            .undrain(250.0, 1)
            .degrade_links(150.0, 4.0);
        let events = plan.validated(2).unwrap();
        let mut state = FaultState::new(events, 2);
        assert!(state.available(0) && state.available(1));
        assert_eq!(state.link_multiplier, 1.0);

        assert!(matches!(
            state.apply(0, 100.0),
            FaultKind::Kill { device: 0 }
        ));
        assert!(matches!(
            state.apply(1, 100.0),
            FaultKind::Drain { device: 1 }
        ));
        assert!(!state.available(0) && !state.available(1));
        assert!(!state.alive[0] && state.alive[1]);

        assert!(matches!(
            state.apply(2, 150.0),
            FaultKind::DegradeLinks { .. }
        ));
        assert_eq!(state.link_multiplier, 4.0);

        state.apply(3, 250.0); // undrain device 1
        state.apply(4, 300.0); // revive device 0
        assert!(state.available(0) && state.available(1));
        assert_eq!(state.unavailable_total_us(0, 1000.0), 200.0);
        assert_eq!(state.unavailable_total_us(1, 1000.0), 150.0);
        assert_eq!(state.availability(0, 1000.0), 0.8);
        assert_eq!(state.availability(1, 1000.0), 0.85);
        assert_eq!(state.faults, vec![1, 1]);
    }

    #[test]
    fn open_windows_close_at_makespan_and_degenerate_serves_are_full() {
        let events = FaultPlan::new().kill(400.0, 0).validated(1).unwrap();
        let mut state = FaultState::new(events, 1);
        state.apply(0, 400.0);
        assert_eq!(state.unavailable_total_us(0, 1000.0), 600.0);
        assert_eq!(state.availability(0, 1000.0), 0.4);
        // Makespan before the fault: nothing lost, clamped sane.
        assert_eq!(state.availability(0, 0.0), 1.0);
        let fresh = FaultState::new(Vec::new(), 1);
        assert_eq!(fresh.availability(0, 0.0), 1.0);
        assert_eq!(fresh.availability(0, 500.0), 1.0);
    }
}
