//! The tile pool: N replicated overlay tiles on the Sec. III-A.3 NoC, each
//! hosting one resident kernel at a time — plus the **residency index** that
//! makes placement O(log n) instead of an O(tiles) scan per arrival.
//!
//! # The residency index
//!
//! Every tile is, at any instant, in exactly one of three classes:
//!
//! * **idle-cold** — free, never charged (no resident kernel);
//! * **idle-warm** — free with kernel `k` resident;
//! * **busy** — running (or transiently mid-transition), projected to host
//!   kernel `k` once its backlog drains, with a *backlog-done* timestamp
//!   `available_us + queued_est_us` that is static between transitions.
//!
//! [`TilePool`] maintains ordered sets over these classes (a min-index set of
//! cold tiles, per-kernel min-index sets of warm idle tiles, per-kernel
//! backlog-ordered sets of busy tiles) plus one-entry-per-kernel "best"
//! summaries, so the dispatcher's earliest-completion query reduces to a
//! constant number of `first()` lookups — see
//! [`TilePool::place_earliest_indexed`]. The class transitions are driven by
//! the pool-level [`enqueue`](TilePool::enqueue) /
//! [`dequeue`](TilePool::dequeue) / [`charge`](TilePool::charge) /
//! [`release`](TilePool::release) calls the event loop makes, each an
//! O(log n) index update.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use overlay_arch::{
    ArchError, FuVariant, NocConfig, OverlayConfig, ResourceUsage, Tile, TileComposition,
};

use crate::cache::{FnvHashMap, KernelKey};
use crate::error::RuntimeError;

/// A totally-ordered wrapper over a finite `f64` timestamp, so virtual-time
/// keys can live in `BTreeSet`/`BTreeMap` index structures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct TimeKey(pub(crate) f64);

impl Eq for TimeKey {}

impl PartialOrd for TimeKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimeKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// What one [`TileState::charge`] call did to the tile's timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChargeOutcome {
    /// When queueing ended and the switch/execution began, microseconds.
    pub start_us: f64,
    /// When the request completes on the tile, microseconds.
    pub completion_us: f64,
    /// Whether a hardware context switch was charged.
    pub switched: bool,
}

/// Dynamic serving state of one tile.
///
/// The online event loop drives a tile through four kinds of transition:
/// [`enqueue`](TileState::enqueue) when the dispatcher places an arrival on
/// it, [`dequeue`](TileState::dequeue) when a queued request is selected to
/// run, [`charge`](TileState::charge) when that request's switch + execution
/// is committed to the timeline (marking the tile running), and
/// [`release`](TileState::release) when the tile-free event fires.
#[derive(Debug, Clone, PartialEq)]
pub struct TileState {
    /// Tile index (row-major across the NoC).
    pub index: usize,
    /// `(row, col)` position on the NoC torus.
    pub coords: (usize, usize),
    /// The kernel currently loaded, if any.
    pub resident: Option<KernelKey>,
    /// Modeled time at which the tile next becomes free, in microseconds.
    pub available_us: f64,
    /// Accumulated busy time (switching + executing), in microseconds.
    pub busy_us: f64,
    /// Number of hardware context switches performed.
    pub switches: usize,
    /// Accumulated context-switch time, in microseconds.
    pub switch_us: f64,
    /// Number of requests served.
    pub served: usize,
    /// Requests currently waiting in the tile's queue (placed, not started).
    pub queue_depth: usize,
    /// High-water mark of [`queue_depth`](TileState::queue_depth).
    pub peak_queue_depth: usize,
    /// Estimated service time queued on the tile, microseconds — the backlog
    /// the dispatcher adds to completion estimates.
    pub queued_est_us: f64,
    /// Kernel of the most recently enqueued request: the dispatcher's
    /// estimate of what the tile will host once its backlog drains. `None`
    /// when the queue is empty (the resident kernel is the projection).
    pub last_enqueued: Option<KernelKey>,
    /// Whether the tile is executing a request (between its
    /// [`charge`](TileState::charge) and its [`release`](TileState::release)).
    pub running: bool,
}

impl TileState {
    fn new(index: usize, coords: (usize, usize)) -> Self {
        TileState {
            index,
            coords,
            resident: None,
            available_us: 0.0,
            busy_us: 0.0,
            switches: 0,
            switch_us: 0.0,
            served: 0,
            queue_depth: 0,
            peak_queue_depth: 0,
            queued_est_us: 0.0,
            last_enqueued: None,
            running: false,
        }
    }

    /// The kernel the tile is projected to host once its queue drains: the
    /// last enqueued kernel if any request is waiting, the resident kernel
    /// otherwise. Placement estimates switch needs against this, not against
    /// [`resident`](TileState::resident), so a queue ending in kernel B does
    /// not pretend kernel A is still warm.
    pub fn projected_resident(&self) -> Option<KernelKey> {
        self.last_enqueued.or(self.resident)
    }

    /// Records a placed-but-not-started request: grows the queue and the
    /// backlog estimate by `est_us`.
    pub fn enqueue(&mut self, key: KernelKey, est_us: f64) {
        self.queue_depth += 1;
        self.peak_queue_depth = self.peak_queue_depth.max(self.queue_depth);
        self.queued_est_us += est_us;
        self.last_enqueued = Some(key);
    }

    /// Removes one queued request (about to start executing), shrinking the
    /// backlog estimate by the same `est_us` it was enqueued with.
    ///
    /// `remaining_tail` is the kernel of the request now *last* in the
    /// queue. Deadline-aware policies can remove from mid-queue — including
    /// the tail — so the caller, who sees the queue, keeps the residency
    /// projection honest.
    ///
    /// # Panics
    ///
    /// Panics if the queue is empty — a dequeue must pair with an enqueue.
    pub fn dequeue(&mut self, est_us: f64, remaining_tail: Option<KernelKey>) {
        assert!(self.queue_depth > 0, "dequeue from an empty tile queue");
        self.queue_depth -= 1;
        if self.queue_depth == 0 {
            self.queued_est_us = 0.0;
            self.last_enqueued = None;
        } else {
            // Clamp: floating-point drift must not leave a phantom backlog.
            self.queued_est_us = (self.queued_est_us - est_us).max(0.0);
            self.last_enqueued = remaining_tail;
        }
    }

    /// Charges one request onto this tile's timeline: an optional context
    /// switch of `switch_us` followed by `exec_us` of execution, starting no
    /// earlier than `arrival_us`. Marks the tile running until
    /// [`release`](TileState::release).
    ///
    /// The returned [`ChargeOutcome`] is also the anchor of the request's
    /// trace timeline: `[arrival, start]` is its queue wait and
    /// `[start, completion]` its switch (+ any image acquisition, charged
    /// inside `switch_us` by the cluster) and run — the lifecycle spans
    /// tile those two intervals exactly, which is what lets
    /// `tests/observability.rs` reconcile span sums against the reported
    /// latency bit for bit.
    pub fn charge(
        &mut self,
        key: KernelKey,
        arrival_us: f64,
        switch_us: f64,
        exec_us: f64,
    ) -> ChargeOutcome {
        let start = self.available_us.max(arrival_us);
        let switched = self.resident != Some(key);
        let switch = if switched {
            self.switches += 1;
            self.switch_us += switch_us;
            switch_us
        } else {
            0.0
        };
        let completion = start + switch + exec_us;
        self.resident = Some(key);
        self.available_us = completion;
        self.busy_us += switch + exec_us;
        self.served += 1;
        self.running = true;
        ChargeOutcome {
            start_us: start,
            completion_us: completion,
            switched,
        }
    }

    /// Marks the tile free again (its tile-free event fired).
    pub fn release(&mut self) {
        self.running = false;
    }

    /// The context-switch cost the tile would pay to run `key` next: zero if
    /// the kernel is already resident, `switch_us` otherwise.
    pub fn switch_cost(&self, key: KernelKey, switch_us: f64) -> f64 {
        if self.resident == Some(key) {
            0.0
        } else {
            switch_us
        }
    }
}

/// A tile's class in the residency index, derived from its state.
#[derive(Debug, Clone, Copy, PartialEq)]
enum TileClass {
    /// Free and never charged: any kernel is a cold start.
    IdleCold,
    /// Free with this kernel resident.
    IdleWarm(KernelKey),
    /// Running (or mid-transition): projected kernel + backlog-done time.
    Busy(KernelKey, TimeKey),
}

fn classify(state: &TileState) -> TileClass {
    if !state.running && state.queue_depth == 0 {
        match state.resident {
            None => TileClass::IdleCold,
            Some(key) => TileClass::IdleWarm(key),
        }
    } else {
        let projected = state
            .projected_resident()
            .expect("a busy tile always projects a kernel");
        TileClass::Busy(projected, TimeKey(state.available_us + state.queued_est_us))
    }
}

/// Incrementally-maintained ordered views over the tile classes, so
/// placement is a constant number of `first()` lookups. The `*_best` maps
/// hold exactly one entry per kernel (that kernel's best tile), which is
/// what lets the evict-candidate query skip the arriving request's own
/// kernel in at most two steps.
#[derive(Debug, Clone, Default)]
struct ResidencyIndex {
    /// Idle tiles with no resident kernel, ordered by tile index.
    idle_cold: BTreeSet<usize>,
    /// Idle tiles by resident kernel, each set ordered by tile index.
    idle_warm: FnvHashMap<KernelKey, BTreeSet<usize>>,
    /// One entry per kernel: its lowest-index idle-warm tile.
    idle_warm_best: BTreeMap<usize, KernelKey>,
    /// Busy tiles by projected kernel, ordered by (backlog-done, index).
    busy: FnvHashMap<KernelKey, BTreeSet<(TimeKey, usize)>>,
    /// One entry per kernel: its earliest-backlog busy tile.
    busy_best: BTreeMap<(TimeKey, usize), KernelKey>,
}

impl ResidencyIndex {
    fn insert_class(&mut self, class: TileClass, tile: usize) {
        match class {
            TileClass::IdleCold => {
                self.idle_cold.insert(tile);
            }
            TileClass::IdleWarm(key) => {
                let set = self.idle_warm.entry(key).or_default();
                if let Some(&first) = set.first() {
                    if tile < first {
                        self.idle_warm_best.remove(&first);
                        self.idle_warm_best.insert(tile, key);
                    }
                } else {
                    self.idle_warm_best.insert(tile, key);
                }
                set.insert(tile);
            }
            TileClass::Busy(key, backlog) => {
                let entry = (backlog, tile);
                let set = self.busy.entry(key).or_default();
                if let Some(&first) = set.first() {
                    if entry < first {
                        self.busy_best.remove(&first);
                        self.busy_best.insert(entry, key);
                    }
                } else {
                    self.busy_best.insert(entry, key);
                }
                set.insert(entry);
            }
        }
    }

    fn remove_class(&mut self, class: TileClass, tile: usize) {
        match class {
            TileClass::IdleCold => {
                self.idle_cold.remove(&tile);
            }
            TileClass::IdleWarm(key) => {
                let set = self.idle_warm.get_mut(&key).expect("indexed warm set");
                let was_best = set.first() == Some(&tile);
                set.remove(&tile);
                if was_best {
                    self.idle_warm_best.remove(&tile);
                    if let Some(&next) = set.first() {
                        self.idle_warm_best.insert(next, key);
                    }
                }
                if set.is_empty() {
                    self.idle_warm.remove(&key);
                }
            }
            TileClass::Busy(key, backlog) => {
                let entry = (backlog, tile);
                let set = self.busy.get_mut(&key).expect("indexed busy set");
                let was_best = set.first() == Some(&entry);
                set.remove(&entry);
                if was_best {
                    self.busy_best.remove(&entry);
                    if let Some(&next) = set.first() {
                        self.busy_best.insert(next, key);
                    }
                }
                if set.is_empty() {
                    self.busy.remove(&key);
                }
            }
        }
    }

    fn clear(&mut self) {
        self.idle_cold.clear();
        self.idle_warm.clear();
        self.idle_warm_best.clear();
        self.busy.clear();
        self.busy_best.clear();
    }
}

/// A pool of identical tiles (built from [`NocConfig`]) with per-tile serving
/// state and the residency index placement queries run against.
///
/// For the write-back variants (V3–V5) a tile hosts a fixed-depth overlay
/// whose kernel is swapped by instruction reload; for the feed-forward
/// variants (`[14]`, V1, V2) a tile models one relocatable partial-
/// reconfiguration region whose kernel swap requires PCAP reconfiguration.
#[derive(Debug, Clone)]
pub struct TilePool {
    noc: NocConfig,
    states: Vec<TileState>,
    index: ResidencyIndex,
    indexing: bool,
    waiting: usize,
}

impl TilePool {
    /// A pool laid out as `noc`.
    pub fn new(noc: NocConfig) -> Self {
        let states: Vec<TileState> = (0..noc.num_tiles())
            .map(|index| TileState::new(index, (index / noc.cols, index % noc.cols)))
            .collect();
        let mut pool = TilePool {
            noc,
            states,
            index: ResidencyIndex::default(),
            indexing: true,
            waiting: 0,
        };
        pool.rebuild_index();
        pool
    }

    /// A pool of `tiles` tiles of `variant` in one NoC row.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::EmptyPool`] when `tiles` is 0.
    pub fn with_tiles(
        variant: FuVariant,
        composition: TileComposition,
        tiles: usize,
    ) -> Result<Self, RuntimeError> {
        let noc = NocConfig::new(1, tiles, Tile::new(variant, composition))
            .map_err(|_| RuntimeError::EmptyPool)?;
        Ok(Self::new(noc))
    }

    /// The NoC layout.
    pub fn noc(&self) -> &NocConfig {
        &self.noc
    }

    /// The replicated tile.
    pub fn tile(&self) -> Tile {
        self.noc.tile
    }

    /// The FU variant of every tile.
    pub fn variant(&self) -> FuVariant {
        self.noc.tile.variant
    }

    /// Number of tiles.
    pub fn num_tiles(&self) -> usize {
        self.states.len()
    }

    /// The overlay depth a kernel sees on a tile (16 for series composition,
    /// 8 for parallel).
    pub fn logical_depth(&self) -> usize {
        self.noc.tile.logical_depth()
    }

    /// The fixed overlay configuration hosted by each tile of a write-back
    /// pool (`None` for the feed-forward variants, whose overlay geometry
    /// follows each kernel).
    ///
    /// # Errors
    ///
    /// Returns an [`ArchError`] if the tile's logical depth is out of range.
    pub fn overlay_config(&self) -> Result<Option<OverlayConfig>, ArchError> {
        if self.variant().has_writeback() {
            Ok(Some(OverlayConfig::new(
                self.variant(),
                self.logical_depth(),
            )?))
        } else {
            Ok(None)
        }
    }

    /// Estimated FPGA resources of the whole array.
    pub fn resource_estimate(&self) -> ResourceUsage {
        self.noc.resource_estimate()
    }

    /// Round-trip NoC latency in cycles between the array's ingress corner
    /// `(0, 0)` and tile `index`: request words route in, results route back.
    pub fn roundtrip_cycles(&self, index: usize) -> usize {
        let coords = self.states[index].coords;
        self.noc.route_latency((0, 0), coords) + self.noc.route_latency(coords, (0, 0))
    }

    /// The per-tile serving states.
    pub fn states(&self) -> &[TileState] {
        &self.states
    }

    /// Total requests waiting (placed, not started) across all tile queues —
    /// the quantity admission control bounds. O(1): maintained by the
    /// enqueue/dequeue transitions.
    pub fn total_waiting(&self) -> usize {
        debug_assert_eq!(self.waiting, self.total_waiting_scan());
        self.waiting
    }

    /// The linear-scan recomputation of [`total_waiting`](Self::total_waiting),
    /// retained as the reference (and the cost model) the pre-index runtime
    /// paid per event.
    pub fn total_waiting_scan(&self) -> usize {
        self.states.iter().map(|s| s.queue_depth).sum()
    }

    /// Whether the residency index is maintained. Disabled by the
    /// linear-reference scan mode so the baseline measured in benchmarks
    /// pays neither the index's cost nor enjoys its speedup.
    pub fn indexing(&self) -> bool {
        self.indexing
    }

    /// Enables or disables residency-index maintenance, rebuilding the index
    /// from the current states when turning it on.
    pub(crate) fn set_indexing(&mut self, enabled: bool) {
        if self.indexing == enabled {
            return;
        }
        self.indexing = enabled;
        self.rebuild_index();
    }

    fn rebuild_index(&mut self) {
        self.index.clear();
        if self.indexing {
            for state in &self.states {
                self.index.insert_class(classify(state), state.index);
            }
        }
    }

    /// Applies `mutate` to one tile's state, keeping the residency index
    /// coherent around the transition. A transition that leaves the tile's
    /// class unchanged (e.g. releasing a tile whose queue immediately keeps
    /// it busy at the same backlog) skips the index churn.
    fn transition<R>(&mut self, tile: usize, mutate: impl FnOnce(&mut TileState) -> R) -> R {
        if !self.indexing {
            return mutate(&mut self.states[tile]);
        }
        let before = classify(&self.states[tile]);
        let result = mutate(&mut self.states[tile]);
        let after = classify(&self.states[tile]);
        if before != after {
            self.index.remove_class(before, tile);
            self.index.insert_class(after, tile);
        }
        result
    }

    /// Places a waiting request on `tile`'s queue (see [`TileState::enqueue`]).
    pub fn enqueue(&mut self, tile: usize, key: KernelKey, est_us: f64) {
        self.waiting += 1;
        self.transition(tile, |state| state.enqueue(key, est_us));
    }

    /// Removes one waiting request from `tile`'s queue
    /// (see [`TileState::dequeue`]).
    pub fn dequeue(&mut self, tile: usize, est_us: f64, remaining_tail: Option<KernelKey>) {
        self.transition(tile, |state| state.dequeue(est_us, remaining_tail));
        self.waiting -= 1;
    }

    /// Starts a queued request in one step: dequeues it (see
    /// [`TileState::dequeue`]) and charges its switch + execution onto the
    /// timeline (see [`TileState::charge`]) under a single residency-index
    /// update — the tile-free hot path's combined transition.
    #[allow(clippy::too_many_arguments)]
    pub fn start_queued(
        &mut self,
        tile: usize,
        est_us: f64,
        remaining_tail: Option<KernelKey>,
        key: KernelKey,
        arrival_us: f64,
        switch_us: f64,
        exec_us: f64,
    ) -> ChargeOutcome {
        let outcome = self.transition(tile, |state| {
            state.dequeue(est_us, remaining_tail);
            state.charge(key, arrival_us, switch_us, exec_us)
        });
        self.waiting -= 1;
        outcome
    }

    /// Commits one request to `tile`'s timeline (see [`TileState::charge`]).
    pub fn charge(
        &mut self,
        tile: usize,
        key: KernelKey,
        arrival_us: f64,
        switch_us: f64,
        exec_us: f64,
    ) -> ChargeOutcome {
        self.transition(tile, |state| {
            state.charge(key, arrival_us, switch_us, exec_us)
        })
    }

    /// Marks `tile` free (its tile-free event fired).
    pub fn release(&mut self, tile: usize) {
        self.transition(tile, |state| state.release());
    }

    /// The indexed earliest-completion placement: the tile with the earliest
    /// estimated completion for a request needing `key` (`est_us` service,
    /// `switch_us` on a kernel swap) at virtual time `now_us`, with
    /// completion ties broken by preferring no-switch over cold over
    /// evicting a warm kernel, then the lowest tile index — exactly the
    /// linear scan's ordering, found in O(log n) index lookups.
    ///
    /// # Panics
    ///
    /// Panics if index maintenance is disabled (the linear reference mode
    /// must use the scan) — that is a runtime-internal wiring bug.
    pub fn place_earliest_indexed(
        &self,
        key: KernelKey,
        est_us: f64,
        switch_us: f64,
        now_us: f64,
    ) -> usize {
        self.earliest_candidate_indexed(key, est_us, switch_us, now_us)
            .3
    }

    /// The full best-candidate tuple behind
    /// [`place_earliest_indexed`](Self::place_earliest_indexed):
    /// `(completion estimate, needs switch, evicts warm kernel, tile)` — the
    /// exact comparison key the placement minimizes. The cluster's
    /// estimate-based device routing compares these tuples *across* pools,
    /// so two devices are ranked by the same total order tile placement
    /// uses within one.
    pub(crate) fn earliest_candidate_indexed(
        &self,
        key: KernelKey,
        est_us: f64,
        switch_us: f64,
        now_us: f64,
    ) -> (f64, bool, bool, usize) {
        assert!(self.indexing, "indexed placement without index maintenance");
        let mut best = (f64::INFINITY, true, true, usize::MAX);
        let mut consider = |candidate: (f64, bool, bool, usize)| {
            if candidate < best {
                best = candidate;
            }
        };
        // Warm candidates: no switch, no eviction.
        if let Some(&(backlog, tile)) = self.index.busy.get(&key).and_then(BTreeSet::first) {
            consider(((backlog.0 + 0.0) + est_us, false, false, tile));
        }
        if let Some(&tile) = self.index.idle_warm.get(&key).and_then(BTreeSet::first) {
            consider(((now_us + 0.0) + est_us, false, false, tile));
        }
        // Cold start: switch, but nothing warm is evicted.
        if let Some(&tile) = self.index.idle_cold.first() {
            consider(((now_us + switch_us) + est_us, true, false, tile));
        }
        // Evict candidates: the best tile projected to a *different* kernel.
        // The best maps hold one entry per kernel, so the arriving kernel's
        // own entry is skipped in at most two steps.
        if let Some((&(backlog, tile), _)) = self
            .index
            .busy_best
            .iter()
            .find(|(_, &kernel)| kernel != key)
        {
            consider(((backlog.0 + switch_us) + est_us, true, true, tile));
        }
        if let Some((&tile, _)) = self
            .index
            .idle_warm_best
            .iter()
            .find(|(_, &kernel)| kernel != key)
        {
            consider(((now_us + switch_us) + est_us, true, true, tile));
        }
        debug_assert!(best.3 != usize::MAX, "a non-empty pool always has a tile");
        best
    }

    /// Evacuates every tile queue without touching execution state or
    /// cumulative counters — fault injection's graceful drain. Queued work
    /// leaves (the caller requeues it elsewhere); resident kernels,
    /// timelines and running requests are untouched so in-flight work
    /// finishes normally.
    pub fn evacuate_queues(&mut self) {
        for tile in 0..self.states.len() {
            let drained = self.transition(tile, |state| {
                let depth = state.queue_depth;
                state.queue_depth = 0;
                state.queued_est_us = 0.0;
                state.last_enqueued = None;
                depth
            });
            self.waiting -= drained;
        }
    }

    /// Evacuates every tile outright — fault injection's device kill. On
    /// top of [`evacuate_queues`](Self::evacuate_queues), running requests
    /// are abandoned, resident kernels are wiped (the device's store is
    /// lost) and timelines rewind to `now_us` so a later revival charges
    /// from the present, not from an abandoned run's completion time.
    /// Cumulative counters (`busy_us`, `switches`, `served`, …) are
    /// preserved: they record attempts, including work the fault destroyed.
    pub fn evacuate(&mut self, now_us: f64) {
        for tile in 0..self.states.len() {
            let drained = self.transition(tile, |state| {
                let depth = state.queue_depth;
                state.queue_depth = 0;
                state.queued_est_us = 0.0;
                state.last_enqueued = None;
                state.running = false;
                state.resident = None;
                state.available_us = now_us;
                depth
            });
            self.waiting -= drained;
        }
    }

    /// Mutable access for unit tests. Mutations made through this bypass the
    /// residency index — the event loop must use the pool-level transition
    /// methods instead.
    #[cfg(test)]
    pub(crate) fn states_mut(&mut self) -> &mut [TileState] {
        &mut self.states
    }

    /// Clears all dynamic state (resident kernels, timelines, counters) and
    /// rebuilds the residency index.
    pub fn reset(&mut self) {
        for state in &mut self.states {
            *state = TileState::new(state.index, state.coords);
        }
        self.waiting = 0;
        self.rebuild_index();
    }
}

impl fmt::Display for TilePool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} tile(s))", self.noc, self.num_tiles())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(fingerprint: u64) -> KernelKey {
        KernelKey {
            fingerprint,
            variant: FuVariant::V4,
            depth: 8,
        }
    }

    #[test]
    fn pool_layout_follows_the_noc() {
        let noc =
            NocConfig::new(2, 3, Tile::new(FuVariant::V4, TileComposition::Parallel)).unwrap();
        let pool = TilePool::new(noc);
        assert_eq!(pool.num_tiles(), 6);
        assert_eq!(pool.states()[4].coords, (1, 1));
        assert_eq!(pool.logical_depth(), 8);
        assert!(pool.to_string().contains("2x3"));
        // Round trip to the ingress corner itself still pays two router exits.
        assert_eq!(pool.roundtrip_cycles(0), 2);
        assert!(pool.roundtrip_cycles(4) > pool.roundtrip_cycles(0));
    }

    #[test]
    fn writeback_pools_host_a_fixed_overlay_feedforward_pools_do_not() {
        let wb = TilePool::with_tiles(FuVariant::V3, TileComposition::Series, 2).unwrap();
        let config = wb.overlay_config().unwrap().unwrap();
        assert_eq!(config.depth(), 16);
        let ff = TilePool::with_tiles(FuVariant::V1, TileComposition::Parallel, 2).unwrap();
        assert!(ff.overlay_config().unwrap().is_none());
    }

    #[test]
    fn empty_pools_are_rejected() {
        assert!(matches!(
            TilePool::with_tiles(FuVariant::V3, TileComposition::Parallel, 0),
            Err(RuntimeError::EmptyPool)
        ));
    }

    #[test]
    fn charging_requests_advances_the_timeline_and_counts_switches() {
        let mut pool = TilePool::with_tiles(FuVariant::V4, TileComposition::Parallel, 1).unwrap();
        let tile = &mut pool.states_mut()[0];
        // Cold start: switch charged.
        let outcome = tile.charge(key(1), 0.0, 0.25, 10.0);
        assert_eq!(outcome.start_us, 0.0);
        assert!((outcome.completion_us - 10.25).abs() < 1e-12);
        assert!(outcome.switched);
        assert!(tile.running);
        assert_eq!(tile.switches, 1);
        // Same kernel again: no switch, queued behind the first request.
        let outcome = tile.charge(key(1), 5.0, 0.25, 10.0);
        assert!((outcome.start_us - 10.25).abs() < 1e-12);
        assert!((outcome.completion_us - 20.25).abs() < 1e-12);
        assert!(!outcome.switched);
        assert_eq!(tile.switches, 1);
        // Different kernel: switch charged; idle gap until arrival is not busy time.
        let outcome = tile.charge(key(2), 100.0, 0.25, 10.0);
        assert_eq!(outcome.start_us, 100.0);
        assert!(outcome.switched);
        assert_eq!(tile.switches, 2);
        assert!((tile.busy_us - 30.5).abs() < 1e-9);
        assert_eq!(tile.served, 3);
        assert_eq!(tile.switch_cost(key(2), 0.25), 0.0);
        assert_eq!(tile.switch_cost(key(3), 0.25), 0.25);
        tile.release();
        assert!(!tile.running);
    }

    #[test]
    fn reset_returns_the_pool_to_cold_state() {
        let mut pool = TilePool::with_tiles(FuVariant::V4, TileComposition::Parallel, 2).unwrap();
        pool.charge(1, key(9), 0.0, 1.0, 5.0);
        pool.enqueue(1, key(9), 5.0);
        assert_eq!(pool.total_waiting(), 1);
        pool.reset();
        assert!(pool.states().iter().all(|s| {
            s.resident.is_none()
                && s.available_us == 0.0
                && s.served == 0
                && s.switches == 0
                && s.queue_depth == 0
                && s.peak_queue_depth == 0
                && s.queued_est_us == 0.0
                && s.last_enqueued.is_none()
                && !s.running
        }));
        assert_eq!(pool.total_waiting(), 0);
    }

    /// The online path's enqueue → dequeue → charge lifecycle: depth and
    /// backlog estimates track, the peak is a high-water mark, and the
    /// projected resident follows the queue tail rather than the loaded
    /// kernel.
    #[test]
    fn queue_transitions_track_depth_backlog_and_projection() {
        let mut pool = TilePool::with_tiles(FuVariant::V4, TileComposition::Parallel, 1).unwrap();
        assert_eq!(pool.states()[0].projected_resident(), None);

        pool.charge(0, key(1), 0.0, 0.25, 10.0);
        assert_eq!(
            pool.states()[0].projected_resident(),
            Some(key(1)),
            "resident projects"
        );

        pool.enqueue(0, key(1), 10.0);
        pool.enqueue(0, key(2), 20.0);
        let tile = &pool.states()[0];
        assert_eq!(tile.queue_depth, 2);
        assert_eq!(tile.peak_queue_depth, 2);
        assert!((tile.queued_est_us - 30.0).abs() < 1e-12);
        assert_eq!(
            tile.projected_resident(),
            Some(key(2)),
            "the queue tail, not the loaded kernel, is what placement sees"
        );
        assert_eq!(pool.total_waiting(), 2);

        pool.dequeue(0, 10.0, Some(key(2)));
        let tile = &pool.states()[0];
        assert_eq!(tile.queue_depth, 1);
        assert_eq!(tile.peak_queue_depth, 2, "peak is a high-water mark");
        assert!((tile.queued_est_us - 20.0).abs() < 1e-12);

        pool.dequeue(0, 20.0, None);
        let tile = &pool.states()[0];
        assert_eq!(tile.queue_depth, 0);
        assert_eq!(tile.queued_est_us, 0.0);
        assert_eq!(
            tile.projected_resident(),
            Some(key(1)),
            "empty queue falls back to the resident kernel"
        );
        assert_eq!(pool.total_waiting(), 0);
    }

    /// A deadline-aware policy can pull the *tail* out of the queue; the
    /// caller-supplied remaining tail keeps the residency projection honest.
    #[test]
    fn dequeuing_the_tail_reprojects_onto_the_remaining_queue() {
        let mut pool = TilePool::with_tiles(FuVariant::V4, TileComposition::Parallel, 1).unwrap();
        pool.charge(0, key(7), 0.0, 0.25, 1.0);
        pool.enqueue(0, key(1), 10.0);
        pool.enqueue(0, key(2), 10.0);
        assert_eq!(pool.states()[0].projected_resident(), Some(key(2)));
        // EDF pops the urgent tail (kernel 2): the queue now ends in kernel 1.
        pool.dequeue(0, 10.0, Some(key(1)));
        assert_eq!(
            pool.states()[0].projected_resident(),
            Some(key(1)),
            "the projection must follow the remaining queue, not the removed tail"
        );
    }

    #[test]
    fn dequeue_clamps_float_drift_out_of_the_backlog() {
        let mut pool = TilePool::with_tiles(FuVariant::V4, TileComposition::Parallel, 1).unwrap();
        pool.charge(0, key(1), 0.0, 0.25, 1.0);
        pool.enqueue(0, key(1), 0.1);
        pool.enqueue(0, key(1), 0.2);
        // Remove slightly more than was added: the estimate clamps at zero
        // instead of going negative and skewing placement.
        pool.dequeue(0, 0.2 + 1e-9, Some(key(1)));
        assert!(pool.states()[0].queued_est_us >= 0.0);
        pool.dequeue(0, 0.1, None);
        assert_eq!(pool.states()[0].queued_est_us, 0.0);
    }

    #[test]
    #[should_panic(expected = "dequeue from an empty tile queue")]
    fn unpaired_dequeue_panics() {
        let mut pool = TilePool::with_tiles(FuVariant::V4, TileComposition::Parallel, 1).unwrap();
        pool.dequeue(0, 1.0, None);
    }

    /// The linear earliest-completion reference the indexed query must match
    /// bit-for-bit (mirrors `Dispatcher::earliest_completion_linear`).
    fn place_linear(
        pool: &TilePool,
        key: KernelKey,
        est_us: f64,
        switch_us: f64,
        now_us: f64,
    ) -> usize {
        let mut best = (f64::INFINITY, true, true, usize::MAX);
        for state in pool.states() {
            let projected = state.projected_resident();
            let needs_switch = projected != Some(key);
            let evicts_warm = needs_switch && projected.is_some();
            let start = state.available_us.max(now_us) + state.queued_est_us;
            let switch = if needs_switch { switch_us } else { 0.0 };
            let completion = start + switch + est_us;
            let candidate = (completion, needs_switch, evicts_warm, state.index);
            if candidate < best {
                best = candidate;
            }
        }
        best.3
    }

    /// Drives a pool through a pseudo-random but loop-shaped transition
    /// schedule (queues only form on running tiles; virtual time never
    /// passes a running tile's completion without a release firing) and
    /// checks the indexed placement against the linear reference at every
    /// step, for every kernel.
    #[test]
    #[allow(clippy::needless_range_loop)]
    fn indexed_placement_matches_the_linear_scan_under_churn() {
        const TILES: usize = 7;
        let mut pool =
            TilePool::with_tiles(FuVariant::V4, TileComposition::Parallel, TILES).unwrap();
        let mut now = 0.0_f64;
        let mut seed = 0x1234_5678_9ABC_DEFFu64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        // Mirror of each tile's queue, oldest first, so dequeues stay paired.
        let mut queues: Vec<Vec<(f64, KernelKey)>> = vec![Vec::new(); TILES];
        for step in 0..800 {
            // Advance virtual time, firing any tile-free transitions it
            // passes (exactly what the event loop's TileFree events do).
            now += (rng() % 8) as f64 * 0.5;
            for tile in 0..TILES {
                while pool.states()[tile].running && pool.states()[tile].available_us <= now {
                    pool.release(tile);
                    if let Some((est, _)) = {
                        let q = &mut queues[tile];
                        if q.is_empty() {
                            None
                        } else {
                            Some(q.remove(0))
                        }
                    } {
                        let tail = queues[tile].last().map(|&(_, k)| k);
                        pool.dequeue(tile, est, tail);
                        let kernel = key(rng() % 4);
                        pool.charge(tile, kernel, now, 0.25, est);
                    }
                }
            }
            // A new arrival: either start it on an idle tile or queue it
            // behind a running one.
            let kernel = key(rng() % 4);
            let est = (rng() % 50) as f64 * 0.5 + 1.0;
            let switch = (rng() % 3) as f64 * 0.25;
            let tile = (rng() % TILES as u64) as usize;
            if !pool.states()[tile].running {
                pool.charge(tile, kernel, now, switch, est);
            } else {
                pool.enqueue(tile, kernel, est);
                queues[tile].push((est, kernel));
            }
            // The indexed query must match the scan for every kernel, warm
            // or not, at every step.
            for probe in 0..5 {
                let probe_key = key(probe);
                assert_eq!(
                    pool.place_earliest_indexed(probe_key, est, switch, now),
                    place_linear(&pool, probe_key, est, switch, now),
                    "step {step}: index diverged from the linear scan"
                );
            }
        }
    }

    #[test]
    fn indexing_can_be_disabled_for_the_linear_reference() {
        let mut pool = TilePool::with_tiles(FuVariant::V4, TileComposition::Parallel, 2).unwrap();
        pool.set_indexing(false);
        assert!(!pool.indexing());
        pool.charge(0, key(1), 0.0, 0.25, 10.0);
        pool.enqueue(0, key(1), 10.0);
        assert_eq!(pool.total_waiting(), 1);
        assert_eq!(pool.total_waiting_scan(), 1);
        // Re-enabling rebuilds the index from the live states.
        pool.set_indexing(true);
        assert_eq!(
            pool.place_earliest_indexed(key(1), 10.0, 0.25, 0.0),
            place_linear(&pool, key(1), 10.0, 0.25, 0.0),
        );
    }
}
