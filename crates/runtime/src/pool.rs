//! The tile pool: N replicated overlay tiles on the Sec. III-A.3 NoC, each
//! hosting one resident kernel at a time.

use std::fmt;

use overlay_arch::{
    ArchError, FuVariant, NocConfig, OverlayConfig, ResourceUsage, Tile, TileComposition,
};

use crate::cache::KernelKey;
use crate::error::RuntimeError;

/// What one [`TileState::charge`] call did to the tile's timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChargeOutcome {
    /// When queueing ended and the switch/execution began, microseconds.
    pub start_us: f64,
    /// When the request completes on the tile, microseconds.
    pub completion_us: f64,
    /// Whether a hardware context switch was charged.
    pub switched: bool,
}

/// Dynamic serving state of one tile.
///
/// The online event loop drives a tile through three kinds of transition:
/// [`enqueue`](TileState::enqueue) when the dispatcher places an arrival on
/// it, [`dequeue`](TileState::dequeue) when a queued request is selected to
/// run, and [`charge`](TileState::charge) when that request's switch +
/// execution is committed to the timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TileState {
    /// Tile index (row-major across the NoC).
    pub index: usize,
    /// `(row, col)` position on the NoC torus.
    pub coords: (usize, usize),
    /// The kernel currently loaded, if any.
    pub resident: Option<KernelKey>,
    /// Modeled time at which the tile next becomes free, in microseconds.
    pub available_us: f64,
    /// Accumulated busy time (switching + executing), in microseconds.
    pub busy_us: f64,
    /// Number of hardware context switches performed.
    pub switches: usize,
    /// Accumulated context-switch time, in microseconds.
    pub switch_us: f64,
    /// Number of requests served.
    pub served: usize,
    /// Requests currently waiting in the tile's queue (placed, not started).
    pub queue_depth: usize,
    /// High-water mark of [`queue_depth`](TileState::queue_depth).
    pub peak_queue_depth: usize,
    /// Estimated service time queued on the tile, microseconds — the backlog
    /// the dispatcher adds to completion estimates.
    pub queued_est_us: f64,
    /// Kernel of the most recently enqueued request: the dispatcher's
    /// estimate of what the tile will host once its backlog drains. `None`
    /// when the queue is empty (the resident kernel is the projection).
    pub last_enqueued: Option<KernelKey>,
}

impl TileState {
    fn new(index: usize, coords: (usize, usize)) -> Self {
        TileState {
            index,
            coords,
            resident: None,
            available_us: 0.0,
            busy_us: 0.0,
            switches: 0,
            switch_us: 0.0,
            served: 0,
            queue_depth: 0,
            peak_queue_depth: 0,
            queued_est_us: 0.0,
            last_enqueued: None,
        }
    }

    /// The kernel the tile is projected to host once its queue drains: the
    /// last enqueued kernel if any request is waiting, the resident kernel
    /// otherwise. Placement estimates switch needs against this, not against
    /// [`resident`](TileState::resident), so a queue ending in kernel B does
    /// not pretend kernel A is still warm.
    pub fn projected_resident(&self) -> Option<KernelKey> {
        self.last_enqueued.or(self.resident)
    }

    /// Records a placed-but-not-started request: grows the queue and the
    /// backlog estimate by `est_us`.
    pub fn enqueue(&mut self, key: KernelKey, est_us: f64) {
        self.queue_depth += 1;
        self.peak_queue_depth = self.peak_queue_depth.max(self.queue_depth);
        self.queued_est_us += est_us;
        self.last_enqueued = Some(key);
    }

    /// Removes one queued request (about to start executing), shrinking the
    /// backlog estimate by the same `est_us` it was enqueued with.
    ///
    /// `remaining_tail` is the kernel of the request now *last* in the
    /// queue. Deadline-aware policies can remove from mid-queue — including
    /// the tail — so the caller, who sees the queue, keeps the residency
    /// projection honest.
    ///
    /// # Panics
    ///
    /// Panics if the queue is empty — a dequeue must pair with an enqueue.
    pub fn dequeue(&mut self, est_us: f64, remaining_tail: Option<KernelKey>) {
        assert!(self.queue_depth > 0, "dequeue from an empty tile queue");
        self.queue_depth -= 1;
        if self.queue_depth == 0 {
            self.queued_est_us = 0.0;
            self.last_enqueued = None;
        } else {
            // Clamp: floating-point drift must not leave a phantom backlog.
            self.queued_est_us = (self.queued_est_us - est_us).max(0.0);
            self.last_enqueued = remaining_tail;
        }
    }

    /// Charges one request onto this tile's timeline: an optional context
    /// switch of `switch_us` followed by `exec_us` of execution, starting no
    /// earlier than `arrival_us`.
    pub fn charge(
        &mut self,
        key: KernelKey,
        arrival_us: f64,
        switch_us: f64,
        exec_us: f64,
    ) -> ChargeOutcome {
        let start = self.available_us.max(arrival_us);
        let switched = self.resident != Some(key);
        let switch = if switched {
            self.switches += 1;
            self.switch_us += switch_us;
            switch_us
        } else {
            0.0
        };
        let completion = start + switch + exec_us;
        self.resident = Some(key);
        self.available_us = completion;
        self.busy_us += switch + exec_us;
        self.served += 1;
        ChargeOutcome {
            start_us: start,
            completion_us: completion,
            switched,
        }
    }

    /// The context-switch cost the tile would pay to run `key` next: zero if
    /// the kernel is already resident, `switch_us` otherwise.
    pub fn switch_cost(&self, key: KernelKey, switch_us: f64) -> f64 {
        if self.resident == Some(key) {
            0.0
        } else {
            switch_us
        }
    }
}

/// A pool of identical tiles (built from [`NocConfig`]) with per-tile serving
/// state.
///
/// For the write-back variants (V3–V5) a tile hosts a fixed-depth overlay
/// whose kernel is swapped by instruction reload; for the feed-forward
/// variants (`[14]`, V1, V2) a tile models one relocatable partial-
/// reconfiguration region whose kernel swap requires PCAP reconfiguration.
#[derive(Debug, Clone)]
pub struct TilePool {
    noc: NocConfig,
    states: Vec<TileState>,
}

impl TilePool {
    /// A pool laid out as `noc`.
    pub fn new(noc: NocConfig) -> Self {
        let states = (0..noc.num_tiles())
            .map(|index| TileState::new(index, (index / noc.cols, index % noc.cols)))
            .collect();
        TilePool { noc, states }
    }

    /// A pool of `tiles` tiles of `variant` in one NoC row.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::EmptyPool`] when `tiles` is 0.
    pub fn with_tiles(
        variant: FuVariant,
        composition: TileComposition,
        tiles: usize,
    ) -> Result<Self, RuntimeError> {
        let noc = NocConfig::new(1, tiles, Tile::new(variant, composition))
            .map_err(|_| RuntimeError::EmptyPool)?;
        Ok(Self::new(noc))
    }

    /// The NoC layout.
    pub fn noc(&self) -> &NocConfig {
        &self.noc
    }

    /// The replicated tile.
    pub fn tile(&self) -> Tile {
        self.noc.tile
    }

    /// The FU variant of every tile.
    pub fn variant(&self) -> FuVariant {
        self.noc.tile.variant
    }

    /// Number of tiles.
    pub fn num_tiles(&self) -> usize {
        self.states.len()
    }

    /// The overlay depth a kernel sees on a tile (16 for series composition,
    /// 8 for parallel).
    pub fn logical_depth(&self) -> usize {
        self.noc.tile.logical_depth()
    }

    /// The fixed overlay configuration hosted by each tile of a write-back
    /// pool (`None` for the feed-forward variants, whose overlay geometry
    /// follows each kernel).
    ///
    /// # Errors
    ///
    /// Returns an [`ArchError`] if the tile's logical depth is out of range.
    pub fn overlay_config(&self) -> Result<Option<OverlayConfig>, ArchError> {
        if self.variant().has_writeback() {
            Ok(Some(OverlayConfig::new(
                self.variant(),
                self.logical_depth(),
            )?))
        } else {
            Ok(None)
        }
    }

    /// Estimated FPGA resources of the whole array.
    pub fn resource_estimate(&self) -> ResourceUsage {
        self.noc.resource_estimate()
    }

    /// Round-trip NoC latency in cycles between the array's ingress corner
    /// `(0, 0)` and tile `index`: request words route in, results route back.
    pub fn roundtrip_cycles(&self, index: usize) -> usize {
        let coords = self.states[index].coords;
        self.noc.route_latency((0, 0), coords) + self.noc.route_latency(coords, (0, 0))
    }

    /// The per-tile serving states.
    pub fn states(&self) -> &[TileState] {
        &self.states
    }

    /// Total requests waiting (placed, not started) across all tile queues —
    /// the quantity admission control bounds.
    pub fn total_waiting(&self) -> usize {
        self.states.iter().map(|s| s.queue_depth).sum()
    }

    /// Mutable access for the dispatcher.
    pub(crate) fn states_mut(&mut self) -> &mut [TileState] {
        &mut self.states
    }

    /// Clears all dynamic state (resident kernels, timelines, counters).
    pub fn reset(&mut self) {
        for state in &mut self.states {
            *state = TileState::new(state.index, state.coords);
        }
    }
}

impl fmt::Display for TilePool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} tile(s))", self.noc, self.num_tiles())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(fingerprint: u64) -> KernelKey {
        KernelKey {
            fingerprint,
            variant: FuVariant::V4,
            depth: 8,
        }
    }

    #[test]
    fn pool_layout_follows_the_noc() {
        let noc =
            NocConfig::new(2, 3, Tile::new(FuVariant::V4, TileComposition::Parallel)).unwrap();
        let pool = TilePool::new(noc);
        assert_eq!(pool.num_tiles(), 6);
        assert_eq!(pool.states()[4].coords, (1, 1));
        assert_eq!(pool.logical_depth(), 8);
        assert!(pool.to_string().contains("2x3"));
        // Round trip to the ingress corner itself still pays two router exits.
        assert_eq!(pool.roundtrip_cycles(0), 2);
        assert!(pool.roundtrip_cycles(4) > pool.roundtrip_cycles(0));
    }

    #[test]
    fn writeback_pools_host_a_fixed_overlay_feedforward_pools_do_not() {
        let wb = TilePool::with_tiles(FuVariant::V3, TileComposition::Series, 2).unwrap();
        let config = wb.overlay_config().unwrap().unwrap();
        assert_eq!(config.depth(), 16);
        let ff = TilePool::with_tiles(FuVariant::V1, TileComposition::Parallel, 2).unwrap();
        assert!(ff.overlay_config().unwrap().is_none());
    }

    #[test]
    fn empty_pools_are_rejected() {
        assert!(matches!(
            TilePool::with_tiles(FuVariant::V3, TileComposition::Parallel, 0),
            Err(RuntimeError::EmptyPool)
        ));
    }

    #[test]
    fn charging_requests_advances_the_timeline_and_counts_switches() {
        let mut pool = TilePool::with_tiles(FuVariant::V4, TileComposition::Parallel, 1).unwrap();
        let tile = &mut pool.states_mut()[0];
        // Cold start: switch charged.
        let outcome = tile.charge(key(1), 0.0, 0.25, 10.0);
        assert_eq!(outcome.start_us, 0.0);
        assert!((outcome.completion_us - 10.25).abs() < 1e-12);
        assert!(outcome.switched);
        assert_eq!(tile.switches, 1);
        // Same kernel again: no switch, queued behind the first request.
        let outcome = tile.charge(key(1), 5.0, 0.25, 10.0);
        assert!((outcome.start_us - 10.25).abs() < 1e-12);
        assert!((outcome.completion_us - 20.25).abs() < 1e-12);
        assert!(!outcome.switched);
        assert_eq!(tile.switches, 1);
        // Different kernel: switch charged; idle gap until arrival is not busy time.
        let outcome = tile.charge(key(2), 100.0, 0.25, 10.0);
        assert_eq!(outcome.start_us, 100.0);
        assert!(outcome.switched);
        assert_eq!(tile.switches, 2);
        assert!((tile.busy_us - 30.5).abs() < 1e-9);
        assert_eq!(tile.served, 3);
        assert_eq!(tile.switch_cost(key(2), 0.25), 0.0);
        assert_eq!(tile.switch_cost(key(3), 0.25), 0.25);
    }

    #[test]
    fn reset_returns_the_pool_to_cold_state() {
        let mut pool = TilePool::with_tiles(FuVariant::V4, TileComposition::Parallel, 2).unwrap();
        pool.states_mut()[1].charge(key(9), 0.0, 1.0, 5.0);
        pool.states_mut()[1].enqueue(key(9), 5.0);
        pool.reset();
        assert!(pool.states().iter().all(|s| {
            s.resident.is_none()
                && s.available_us == 0.0
                && s.served == 0
                && s.switches == 0
                && s.queue_depth == 0
                && s.peak_queue_depth == 0
                && s.queued_est_us == 0.0
                && s.last_enqueued.is_none()
        }));
        assert_eq!(pool.total_waiting(), 0);
    }

    /// The online path's enqueue → dequeue → charge lifecycle: depth and
    /// backlog estimates track, the peak is a high-water mark, and the
    /// projected resident follows the queue tail rather than the loaded
    /// kernel.
    #[test]
    fn queue_transitions_track_depth_backlog_and_projection() {
        let mut pool = TilePool::with_tiles(FuVariant::V4, TileComposition::Parallel, 1).unwrap();
        let tile = &mut pool.states_mut()[0];
        assert_eq!(tile.projected_resident(), None);

        tile.charge(key(1), 0.0, 0.25, 10.0);
        assert_eq!(tile.projected_resident(), Some(key(1)), "resident projects");

        tile.enqueue(key(1), 10.0);
        tile.enqueue(key(2), 20.0);
        assert_eq!(tile.queue_depth, 2);
        assert_eq!(tile.peak_queue_depth, 2);
        assert!((tile.queued_est_us - 30.0).abs() < 1e-12);
        assert_eq!(
            tile.projected_resident(),
            Some(key(2)),
            "the queue tail, not the loaded kernel, is what placement sees"
        );

        tile.dequeue(10.0, Some(key(2)));
        assert_eq!(tile.queue_depth, 1);
        assert_eq!(tile.peak_queue_depth, 2, "peak is a high-water mark");
        assert!((tile.queued_est_us - 20.0).abs() < 1e-12);

        tile.dequeue(20.0, None);
        assert_eq!(tile.queue_depth, 0);
        assert_eq!(tile.queued_est_us, 0.0);
        assert_eq!(
            tile.projected_resident(),
            Some(key(1)),
            "empty queue falls back to the resident kernel"
        );
    }

    /// A deadline-aware policy can pull the *tail* out of the queue; the
    /// caller-supplied remaining tail keeps the residency projection honest.
    #[test]
    fn dequeuing_the_tail_reprojects_onto_the_remaining_queue() {
        let mut pool = TilePool::with_tiles(FuVariant::V4, TileComposition::Parallel, 1).unwrap();
        let tile = &mut pool.states_mut()[0];
        tile.enqueue(key(1), 10.0);
        tile.enqueue(key(2), 10.0);
        assert_eq!(tile.projected_resident(), Some(key(2)));
        // EDF pops the urgent tail (kernel 2): the queue now ends in kernel 1.
        tile.dequeue(10.0, Some(key(1)));
        assert_eq!(
            tile.projected_resident(),
            Some(key(1)),
            "the projection must follow the remaining queue, not the removed tail"
        );
    }

    #[test]
    fn dequeue_clamps_float_drift_out_of_the_backlog() {
        let mut pool = TilePool::with_tiles(FuVariant::V4, TileComposition::Parallel, 1).unwrap();
        let tile = &mut pool.states_mut()[0];
        tile.enqueue(key(1), 0.1);
        tile.enqueue(key(1), 0.2);
        // Remove slightly more than was added: the estimate clamps at zero
        // instead of going negative and skewing placement.
        tile.dequeue(0.2 + 1e-9, Some(key(1)));
        assert!(tile.queued_est_us >= 0.0);
        tile.dequeue(0.1, None);
        assert_eq!(tile.queued_est_us, 0.0);
    }

    #[test]
    #[should_panic(expected = "dequeue from an empty tile queue")]
    fn unpaired_dequeue_panics() {
        let mut pool = TilePool::with_tiles(FuVariant::V4, TileComposition::Parallel, 1).unwrap();
        pool.states_mut()[0].dequeue(1.0, None);
    }
}
