//! Device-tier routing: which NoC array a request is served on, and what an
//! inter-device kernel transfer costs.
//!
//! A [`Cluster`](crate::Cluster) adds one decision *above* tile placement:
//! every arrival is first routed to a device, and only then does that
//! device's [`Dispatcher`](crate::Dispatcher) pick a tile. Three policies
//! cover the classic sharding trade-offs:
//!
//! * [`RoutePolicy::KernelHash`] — a stable shard by kernel content: every
//!   request for kernel `k` lands on `hash(k) mod devices`, so each device
//!   only ever hosts its own kernel subset (maximum residency, zero
//!   balancing);
//! * [`RoutePolicy::LeastLoaded`] — the device with the fewest waiting
//!   requests (ties: fewest busy tiles, then lowest id), answered in
//!   O(log devices) from the cluster's load index — the device-tier mirror
//!   of the pool's residency-index "best" summaries;
//! * [`RoutePolicy::PowerOfTwoChoices`] — two deterministically-hashed
//!   candidate devices, compared by *estimated completion* (each answered
//!   from that device's residency index, with the transfer-adjusted switch
//!   cost), taking the better. The classic load-balancing compromise:
//!   almost as balanced as least-loaded, almost as sticky as hashing.
//!
//! # The transfer model
//!
//! Devices sit on a linear inter-device link (hop distance = id distance).
//! Before a tile can context-switch to kernel `k`, the device needs `k`'s
//! compiled image in its local store (the per-device
//! [`KernelCache`](crate::KernelCache)). A device that does not hold the
//! image acquires it over the cheapest path:
//!
//! * **host load** — from host memory: `host_latency_us + bytes ·
//!   host_us_per_byte` (the "local cold load"), or
//! * **peer transfer** — from the nearest device whose store holds the
//!   image: `hops · hop_latency_us + bytes · link_us_per_byte`, counted in
//!   the per-device transfer metrics.
//!
//! The acquisition delay is charged into the request's switch phase and —
//! crucially — into the completion *estimates* routing and placement
//! compare, so sending a kernel to a device where it is cold correctly
//! weighs the transfer (or host load) against queueing behind the device
//! where it is warm. A single-device cluster never acquires anything
//! (images enter the store at compile time), which is what keeps the
//! 1-device [`Cluster`](crate::Cluster) bitwise identical to
//! [`Runtime`](crate::Runtime).
//!
//! The same [`TransferModel`] prices the session tier's *activation*
//! transfers: when consecutive stages of a
//! [`PipelineRequest`](crate::PipelineRequest) land on different devices,
//! the producer's output bytes cross the same linear link (`hops ·
//! hop_latency_us + bytes · link_us_per_byte`), and a stage whose producer
//! died restores its inputs from the host checkpoint at host-load rates.
//! Stage-affinity routing ([`Cluster::with_stage_affinity`]) may override
//! the policy's pick with the producer's device when the modeled transfer
//! saving outweighs the queueing penalty — kernel-image acquisition is then
//! re-priced for the overridden device, so both costs always describe the
//! device the stage actually runs on.
//!
//! [`Cluster::with_stage_affinity`]: crate::Cluster::with_stage_affinity

use std::fmt;

/// How a [`Cluster`](crate::Cluster) routes each arrival to a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RoutePolicy {
    /// Stable shard by kernel content hash: requests for one kernel always
    /// land on the same device (deterministic under resubmission).
    #[default]
    KernelHash,
    /// The device with the fewest waiting requests (ties: fewest busy
    /// tiles, then lowest id), from the O(log devices) cluster load index.
    LeastLoaded,
    /// Two hash-sampled candidate devices, compared by estimated completion
    /// (transfer cost included); the better one wins.
    PowerOfTwoChoices,
}

impl RoutePolicy {
    /// Every policy, in documentation order.
    pub const ALL: [RoutePolicy; 3] = [
        RoutePolicy::KernelHash,
        RoutePolicy::LeastLoaded,
        RoutePolicy::PowerOfTwoChoices,
    ];

    /// The policy's export label (what trace route-choice spans carry).
    pub fn label(&self) -> &'static str {
        match self {
            RoutePolicy::KernelHash => "kernel-hash",
            RoutePolicy::LeastLoaded => "least-loaded",
            RoutePolicy::PowerOfTwoChoices => "power-of-two",
        }
    }

    /// True when the policy is a *static* shard map: the routed device is a
    /// pure function of the kernel, independent of any runtime state. This
    /// is what lets the sharded cluster loop
    /// ([`Cluster::with_threads`](crate::Cluster::with_threads)) run device
    /// lanes independently — with a static map, routing never reads
    /// another device's load or cache, so the submission schedule is the
    /// only cross-shard edge. The dynamic policies (least-loaded,
    /// power-of-two-choices) compare live device state at each arrival and
    /// pin the serial loop.
    pub fn is_statically_sharded(&self) -> bool {
        matches!(self, RoutePolicy::KernelHash)
    }
}

impl fmt::Display for RoutePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoutePolicy::KernelHash => f.write_str("kernel-hash"),
            RoutePolicy::LeastLoaded => f.write_str("least-loaded"),
            RoutePolicy::PowerOfTwoChoices => f.write_str("power-of-two"),
        }
    }
}

/// Timing model for moving a compiled kernel image onto a device: a linear
/// inter-device link (per-hop latency plus per-byte cost) against a host
/// load path (fixed latency plus a slower per-byte cost).
///
/// The defaults model a ~10 GB/s device-to-device serial link with 0.5 µs
/// per-hop setup against a host DMA path with ~10× the per-byte cost and a
/// 5 µs driver round trip — so pulling a kernel that is warm on a neighbor
/// device beats reloading it from the host, and both are visible next to
/// the [`ReconfigModel`](overlay_arch::ReconfigModel) switch costs they
/// precede.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferModel {
    /// Per-hop link latency between adjacent devices, microseconds.
    pub hop_latency_us: f64,
    /// Per-byte cost on the inter-device link, microseconds.
    pub link_us_per_byte: f64,
    /// Fixed latency of a host load, microseconds.
    pub host_latency_us: f64,
    /// Per-byte cost of a host load, microseconds.
    pub host_us_per_byte: f64,
}

impl TransferModel {
    /// The default model (see the type-level docs).
    pub const fn new() -> Self {
        TransferModel {
            hop_latency_us: 0.5,
            link_us_per_byte: 1.0e-4,
            host_latency_us: 5.0,
            host_us_per_byte: 1.0e-3,
        }
    }

    /// A zero-cost model: transfers and host loads are free (useful to
    /// isolate routing behavior from acquisition costs).
    pub const fn free() -> Self {
        TransferModel {
            hop_latency_us: 0.0,
            link_us_per_byte: 0.0,
            host_latency_us: 0.0,
            host_us_per_byte: 0.0,
        }
    }

    /// Cost of moving `bytes` over `hops` inter-device links (pipelined:
    /// the per-byte cost is paid once, the latency per hop).
    pub fn link_transfer_us(&self, hops: usize, bytes: usize) -> f64 {
        hops as f64 * self.hop_latency_us + bytes as f64 * self.link_us_per_byte
    }

    /// Cost of loading `bytes` from the host.
    pub fn host_load_us(&self, bytes: usize) -> f64 {
        self.host_latency_us + bytes as f64 * self.host_us_per_byte
    }

    /// This model with its inter-device link slowed by `multiplier` (≥ 1:
    /// think a flapping or oversubscribed serial link). Per-hop latency and
    /// per-byte link cost scale together; the host path does not ride the
    /// link and keeps its price, so a saturated multiplier prices every
    /// peer out and acquisition falls back to host loads.
    #[must_use]
    pub fn degraded(&self, multiplier: f64) -> Self {
        TransferModel {
            hop_latency_us: self.hop_latency_us * multiplier,
            link_us_per_byte: self.link_us_per_byte * multiplier,
            ..*self
        }
    }
}

impl Default for TransferModel {
    fn default() -> Self {
        Self::new()
    }
}

/// How a routed request will acquire its kernel image on the chosen device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Acquisition {
    /// The device already holds the image (or is its compile home).
    Resident,
    /// Loaded from the host at this cost.
    HostLoad { cost_us: f64 },
    /// Transferred from a peer device's store at this cost.
    Transfer {
        from: usize,
        cost_us: f64,
        bytes: usize,
    },
}

impl Acquisition {
    /// The delay the acquisition adds ahead of the context switch.
    pub(crate) fn cost_us(&self) -> f64 {
        match *self {
            Acquisition::Resident => 0.0,
            Acquisition::HostLoad { cost_us } | Acquisition::Transfer { cost_us, .. } => cost_us,
        }
    }

    /// The acquisition source's export label (what trace acquire spans
    /// carry).
    pub(crate) fn label(&self) -> &'static str {
        match self {
            Acquisition::Resident => "resident",
            Acquisition::HostLoad { .. } => "host",
            Acquisition::Transfer { .. } => "transfer",
        }
    }

    /// Image bytes moved over the inter-device link (0 off-link).
    pub(crate) fn bytes(&self) -> u64 {
        match *self {
            Acquisition::Transfer { bytes, .. } => bytes as u64,
            _ => 0,
        }
    }
}

/// The cheapest way for `target` to acquire a `bytes`-sized kernel image,
/// given the devices whose stores currently hold it: a transfer from the
/// nearest holding peer over the linear link, or the host-load path —
/// whichever is cheaper (peer ties break toward the lowest id). Shared by
/// demand acquisition (charged into the requester's switch phase) and the
/// replication layer's prefetch-cost accounting.
pub(crate) fn cheapest_acquisition(
    transfer: &TransferModel,
    holders: impl Iterator<Item = usize>,
    target: usize,
    bytes: usize,
) -> Acquisition {
    let host_us = transfer.host_load_us(bytes);
    let mut best: Option<(f64, usize)> = None;
    for peer in holders {
        if peer == target {
            continue;
        }
        let cost = transfer.link_transfer_us(peer.abs_diff(target), bytes);
        if best.is_none_or(|(current, from)| (cost, peer) < (current, from)) {
            best = Some((cost, peer));
        }
    }
    match best {
        Some((cost_us, from)) if cost_us < host_us => Acquisition::Transfer {
            from,
            cost_us,
            bytes,
        },
        _ => Acquisition::HostLoad { cost_us: host_us },
    }
}

/// SplitMix64: a cheap, well-mixed finalizer for shard hashing — one
/// multiply-xor chain, no state. Also the deterministic "randomness" behind
/// the [`scenario`](crate::fault::scenario) workload generator's tenant
/// picks (no host RNG anywhere in the virtual-time path).
pub(crate) fn splitmix64(mut value: u64) -> u64 {
    value = value.wrapping_add(0x9e37_79b9_7f4a_7c15);
    value = (value ^ (value >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    value = (value ^ (value >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    value ^ (value >> 31)
}

/// The kernel's home device under stable sharding: every request for the
/// same kernel fingerprint maps here, on every resubmission.
pub(crate) fn kernel_home(fingerprint: u64, devices: usize) -> usize {
    debug_assert!(devices > 0);
    (splitmix64(fingerprint) % devices as u64) as usize
}

/// The two distinct candidate devices power-of-two-choices probes for a
/// request: hashed from the kernel fingerprint *and* the request id, so a
/// kernel's stream of requests spreads its probes while staying a pure
/// (deterministic) function of the request. With one device both
/// candidates are device 0.
pub(crate) fn power_of_two_pair(
    fingerprint: u64,
    request_id: u64,
    devices: usize,
) -> (usize, usize) {
    debug_assert!(devices > 0);
    if devices == 1 {
        return (0, 0);
    }
    let hash = splitmix64(fingerprint ^ splitmix64(request_id));
    let first = (hash % devices as u64) as usize;
    let mut second = ((hash >> 32) % (devices as u64 - 1)) as usize;
    if second >= first {
        second += 1;
    }
    (first, second)
}

/// A per-request set of devices the router must not pick again — built up
/// as a request requeues off dead or draining devices, so a retry never
/// lands back on the device that just failed it. A word-packed bitmask:
/// empty sets allocate nothing, and membership is one shift and mask.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct ExclusionSet {
    words: Vec<u64>,
}

impl ExclusionSet {
    pub(crate) fn insert(&mut self, device: usize) {
        let word = device / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        self.words[word] |= 1 << (device % 64);
    }

    pub(crate) fn contains(&self, device: usize) -> bool {
        self.words
            .get(device / 64)
            .is_some_and(|word| word & (1 << (device % 64)) != 0)
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.words.iter().all(|&word| word == 0)
    }
}

/// The kernel's home under stable sharding, restricted to eligible devices:
/// the first eligible device scanning cyclically upward from
/// [`kernel_home`]. With every device eligible this *is* `kernel_home` (the
/// no-fault path reduces exactly); `None` when no device is eligible.
pub(crate) fn kernel_home_eligible(
    fingerprint: u64,
    devices: usize,
    eligible: impl Fn(usize) -> bool,
) -> Option<usize> {
    let home = kernel_home(fingerprint, devices);
    (0..devices)
        .map(|offset| (home + offset) % devices)
        .find(|&device| eligible(device))
}

/// The power-of-two-choices probe pair drawn from the eligible devices
/// only: the same hash indexes into the (sorted) eligible list, so with
/// every device eligible this reproduces [`power_of_two_pair`] bit for bit.
/// A single eligible device probes itself twice; `None` when none is.
pub(crate) fn power_of_two_pair_eligible(
    fingerprint: u64,
    request_id: u64,
    devices: usize,
    eligible: impl Fn(usize) -> bool,
) -> Option<(usize, usize)> {
    let pool: Vec<usize> = (0..devices).filter(|&device| eligible(device)).collect();
    match pool.len() {
        0 => None,
        1 => Some((pool[0], pool[0])),
        n => {
            let hash = splitmix64(fingerprint ^ splitmix64(request_id));
            let first = (hash % n as u64) as usize;
            let mut second = ((hash >> 32) % (n as u64 - 1)) as usize;
            if second >= first {
                second += 1;
            }
            Some((pool[first], pool[second]))
        }
    }
}

/// The least-loaded eligible device: the first eligible entry of the
/// ordered `(waiting, busy_tiles, id)` load-index keys. With every device
/// eligible this is the index head — the exact no-fault choice. `None`
/// when no indexed device is eligible.
pub(crate) fn least_loaded_eligible(
    load_keys: impl Iterator<Item = (usize, usize, usize)>,
    eligible: impl Fn(usize) -> bool,
) -> Option<usize> {
    load_keys
        .map(|(_, _, id)| id)
        .find(|&device| eligible(device))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_home_is_stable_and_in_range() {
        for devices in 1..=8usize {
            for fingerprint in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
                let home = kernel_home(fingerprint, devices);
                assert!(home < devices);
                assert_eq!(home, kernel_home(fingerprint, devices), "stable");
            }
        }
        // The shard spreads distinct kernels: 64 fingerprints over 4 devices
        // must not all collapse onto one shard.
        let mut counts = [0usize; 4];
        for fingerprint in 0..64u64 {
            counts[kernel_home(fingerprint, 4)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "spread: {counts:?}");
    }

    #[test]
    fn power_of_two_pairs_are_distinct_and_deterministic() {
        for devices in 2..=8usize {
            for id in 0..32u64 {
                let (a, b) = power_of_two_pair(0xFEED, id, devices);
                assert!(a < devices && b < devices);
                assert_ne!(a, b, "candidates must differ");
                assert_eq!((a, b), power_of_two_pair(0xFEED, id, devices));
            }
        }
        assert_eq!(power_of_two_pair(7, 7, 1), (0, 0));
        // Different request ids probe different pairs at least sometimes.
        let pairs: std::collections::HashSet<(usize, usize)> =
            (0..16u64).map(|id| power_of_two_pair(1, id, 8)).collect();
        assert!(pairs.len() > 1, "probes must spread across requests");
    }

    #[test]
    fn transfer_model_costs_scale_with_hops_and_bytes() {
        let model = TransferModel::new();
        assert!(model.link_transfer_us(1, 0) > 0.0);
        assert!(model.link_transfer_us(2, 100) > model.link_transfer_us(1, 100));
        assert!(model.link_transfer_us(1, 200) > model.link_transfer_us(1, 100));
        // A one-hop transfer of a small image beats the host load.
        assert!(model.link_transfer_us(1, 512) < model.host_load_us(512));
        let free = TransferModel::free();
        assert_eq!(free.link_transfer_us(3, 4096), 0.0);
        assert_eq!(free.host_load_us(4096), 0.0);
        assert_eq!(TransferModel::default(), TransferModel::new());
    }

    #[test]
    fn policies_display_and_default() {
        assert_eq!(RoutePolicy::default(), RoutePolicy::KernelHash);
        let names: Vec<String> = RoutePolicy::ALL.iter().map(|p| p.to_string()).collect();
        assert_eq!(names, vec!["kernel-hash", "least-loaded", "power-of-two"]);
    }

    #[test]
    fn cheapest_acquisition_prefers_the_nearest_peer_then_the_host() {
        let model = TransferModel::new();
        // Peers at 1 and 3 hold the image; target 0 pulls from the nearest.
        let acquisition = cheapest_acquisition(&model, [3usize, 1].into_iter(), 0, 512);
        assert!(matches!(acquisition, Acquisition::Transfer { from: 1, .. }));
        // The target itself holding the image is not a source.
        let acquisition = cheapest_acquisition(&model, [0usize].into_iter(), 0, 512);
        assert!(matches!(acquisition, Acquisition::HostLoad { .. }));
        // No holders at all: host load.
        let acquisition = cheapest_acquisition(&model, std::iter::empty(), 2, 64);
        assert!(matches!(acquisition, Acquisition::HostLoad { .. }));
        // A free host path beats any priced transfer.
        let free_host = TransferModel {
            host_latency_us: 0.0,
            host_us_per_byte: 0.0,
            ..TransferModel::new()
        };
        let acquisition = cheapest_acquisition(&free_host, [1usize].into_iter(), 0, 512);
        assert!(matches!(acquisition, Acquisition::HostLoad { cost_us } if cost_us == 0.0));
    }

    #[test]
    fn exclusion_sets_grow_on_demand() {
        let mut set = ExclusionSet::default();
        assert!(set.is_empty());
        assert!(!set.contains(0));
        assert!(!set.contains(200));
        set.insert(3);
        set.insert(130);
        assert!(!set.is_empty());
        assert!(set.contains(3));
        assert!(set.contains(130));
        assert!(!set.contains(2));
        assert!(!set.contains(131));
        assert_eq!(set, set.clone());
    }

    #[test]
    fn kernel_home_eligible_reduces_and_walks_and_fails() {
        for devices in 1..=8usize {
            for fingerprint in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
                // Everything eligible: exactly the legacy shard map.
                assert_eq!(
                    kernel_home_eligible(fingerprint, devices, |_| true),
                    Some(kernel_home(fingerprint, devices))
                );
                // Nothing eligible: the all-excluded error path.
                assert_eq!(kernel_home_eligible(fingerprint, devices, |_| false), None);
            }
        }
        // Excluding the home walks cyclically to the next device up.
        let home = kernel_home(0xFEED, 4);
        let next = kernel_home_eligible(0xFEED, 4, |d| d != home);
        assert_eq!(next, Some((home + 1) % 4));
        // Only one survivor: every kernel routes there.
        for fingerprint in 0..32u64 {
            assert_eq!(kernel_home_eligible(fingerprint, 4, |d| d == 2), Some(2));
        }
    }

    #[test]
    fn power_of_two_pair_eligible_reduces_and_respects_exclusions() {
        for devices in 1..=8usize {
            for id in 0..32u64 {
                // Everything eligible: exactly the legacy probe pair.
                assert_eq!(
                    power_of_two_pair_eligible(0xFEED, id, devices, |_| true),
                    Some(power_of_two_pair(0xFEED, id, devices))
                );
                // Nothing eligible: the all-excluded error path.
                assert_eq!(
                    power_of_two_pair_eligible(0xFEED, id, devices, |_| false),
                    None
                );
            }
        }
        // An excluded device is never probed, and the pair stays distinct.
        for id in 0..64u64 {
            let (a, b) = power_of_two_pair_eligible(0xBEEF, id, 8, |d| d != 5).unwrap();
            assert_ne!(a, 5);
            assert_ne!(b, 5);
            assert_ne!(a, b);
            assert!(a < 8 && b < 8);
        }
        // A single survivor probes itself twice.
        assert_eq!(
            power_of_two_pair_eligible(1, 2, 8, |d| d == 6),
            Some((6, 6))
        );
    }

    #[test]
    fn least_loaded_eligible_skips_to_the_first_eligible_key() {
        let keys = [(0usize, 0usize, 2usize), (1, 0, 0), (3, 1, 1)];
        // Everything eligible: the index head wins, as without faults.
        assert_eq!(
            least_loaded_eligible(keys.iter().copied(), |_| true),
            Some(2)
        );
        // Head excluded: skip-scan to the next ordered key.
        assert_eq!(
            least_loaded_eligible(keys.iter().copied(), |d| d != 2),
            Some(0)
        );
        assert_eq!(
            least_loaded_eligible(keys.iter().copied(), |d| d == 1),
            Some(1)
        );
        // Nothing eligible (or an empty index): the all-excluded path.
        assert_eq!(least_loaded_eligible(keys.iter().copied(), |_| false), None);
        assert_eq!(least_loaded_eligible(std::iter::empty(), |_| true), None);
    }

    #[test]
    fn degraded_links_scale_link_costs_only() {
        let model = TransferModel::new();
        let slow = model.degraded(4.0);
        // Zero-byte images still pay the (scaled) per-hop setup.
        assert_eq!(
            slow.link_transfer_us(2, 0),
            4.0 * model.link_transfer_us(2, 0)
        );
        assert_eq!(slow.host_load_us(0), model.host_load_us(0));
        // Byte costs scale on the link, never on the host path.
        assert_eq!(
            slow.link_transfer_us(1, 1000),
            4.0 * model.link_transfer_us(1, 1000)
        );
        assert_eq!(slow.host_load_us(4096), model.host_load_us(4096));
        // A multiplier of 1 is the identity.
        assert_eq!(model.degraded(1.0), model);
    }

    #[test]
    fn saturated_links_push_acquisition_to_the_host() {
        let slow = TransferModel::new().degraded(1.0e12);
        // A next-door peer holds the image, but the link is priced out.
        let acquisition = cheapest_acquisition(&slow, [1usize].into_iter(), 0, 512);
        assert!(matches!(acquisition, Acquisition::HostLoad { .. }));
        // The host price is untouched by the degradation.
        assert!(
            matches!(acquisition, Acquisition::HostLoad { cost_us } if cost_us == TransferModel::new().host_load_us(512))
        );
    }

    #[test]
    fn host_versus_degraded_link_crossover_pricing() {
        let model = TransferModel::new();
        // Defaults, one hop, 512 bytes: link 0.5512 µs vs host 5.512 µs —
        // the crossover multiplier is exactly 10.
        let link = model.link_transfer_us(1, 512);
        let host = model.host_load_us(512);
        let crossover = host / link;
        assert_eq!(crossover, 10.0);
        // Just below the crossover the peer still wins.
        let nearly = model.degraded(crossover * 0.99);
        assert!(matches!(
            cheapest_acquisition(&nearly, [1usize].into_iter(), 0, 512),
            Acquisition::Transfer { from: 1, .. }
        ));
        // At the crossover the tie goes to the host (transfers must be
        // strictly cheaper), and beyond it the host clearly wins.
        for multiplier in [crossover, crossover * 2.0] {
            let degraded = model.degraded(multiplier);
            assert!(matches!(
                cheapest_acquisition(&degraded, [1usize].into_iter(), 0, 512),
                Acquisition::HostLoad { .. }
            ));
        }
    }

    #[test]
    fn acquisition_costs_flow_through() {
        assert_eq!(Acquisition::Resident.cost_us(), 0.0);
        assert_eq!(Acquisition::HostLoad { cost_us: 5.0 }.cost_us(), 5.0);
        let transfer = Acquisition::Transfer {
            from: 2,
            cost_us: 1.5,
            bytes: 64,
        };
        assert_eq!(transfer.cost_us(), 1.5);
    }
}
