//! The multi-device cluster tier: several NoC tile arrays ([`Device`]s)
//! behind one event loop, one [`Submitter`] and a device-routing layer.
//!
//! A [`Cluster`] scales the serving runtime past a single FPGA: each device
//! wraps its own [`TilePool`] (with its PR 3 residency index), its own
//! [`KernelCache`] acting as the device-local kernel-image store, and its
//! own [`Dispatcher`]. Every arrival is **routed** to a device by a
//! [`RoutePolicy`] (stable kernel-hash sharding, an O(log devices)
//! least-loaded index, or power-of-two-choices over completion estimates)
//! and then **placed** on a tile by that device's dispatcher, exactly as a
//! single [`Runtime`] would place it.
//!
//! Moving a kernel to a device that has never hosted it is not free: the
//! [`TransferModel`] charges either a host load (the "local cold load") or
//! an inter-device transfer from the nearest device already holding the
//! image — whichever is cheaper — and that acquisition delay is threaded
//! into the completion estimates routing and placement compare, and into
//! the switch phase the winning tile actually charges. Per-device
//! [`DeviceMetrics`] report utilization, queue depth, cache hit rate and
//! the transfer traffic; cluster totals reuse [`RuntimeMetrics`], with
//! latency percentiles rolled up through the sorted-run merge path
//! ([`metrics::percentile_from_sorted_parts`]) instead of re-sorting.
//!
//! A 1-device cluster is the degenerate case and reproduces [`Runtime`]'s
//! outcomes **bitwise** (`tests/runtime_equivalence.rs` proves it on
//! randomized traces): routing collapses to device 0, no image is ever
//! acquired (they enter the store at compile time), and the event loop
//! mirrors `Runtime`'s decision order exactly.
//!
//! # Example
//!
//! ```
//! use overlay_runtime::{Cluster, KernelSpec, Request, RoutePolicy};
//! use overlay_arch::FuVariant;
//! use overlay_sim::Workload;
//!
//! # fn main() -> Result<(), overlay_runtime::RuntimeError> {
//! let mut cluster = Cluster::new(FuVariant::V4, 2, 2)?
//!     .with_route_policy(RoutePolicy::KernelHash);
//!
//! let saxpy = KernelSpec::from_source("saxpy", "kernel saxpy(a, x, y) { out r = a * x + y; }");
//! let poly = KernelSpec::from_source("poly", "kernel poly(x) { out y = (x * x + 3) * x; }");
//! let trace: Vec<Request> = (0..8u64)
//!     .map(|i| {
//!         let (kernel, inputs) = if i % 2 == 0 { (saxpy.clone(), 3) } else { (poly.clone(), 1) };
//!         Request::new(i, kernel, Workload::ramp(inputs, 8)).at(i as f64)
//!     })
//!     .collect();
//!
//! let report = cluster.serve(trace)?;
//! assert_eq!(report.outcomes().len(), 8);
//! // Kernel-hash routing pins each kernel to one shard.
//! for outcome in report.outcomes() {
//!     assert!(outcome.device < 2);
//! }
//! assert_eq!(report.device_metrics().len(), 2);
//! # Ok(())
//! # }
//! ```

mod shard;

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{mpsc, Arc};
use std::thread;

use overlay_arch::{FuVariant, ReconfigModel, TileComposition};
use overlay_frontend::LowerOptions;
use overlay_sim::{OverlaySimulator, SimError, SimRun};

use crate::cache::CacheStats;
use crate::control::{Batcher, Replicator};
use crate::dispatch::TileQueue;
use crate::event::{EventKind, EventQueue};
use crate::fault::{FaultKind, FaultPlan, FaultState};
use crate::metrics::{self, BatchStats, DeviceMetrics, ReplicationStats, RuntimeMetrics};
use crate::obs;
use crate::pool::ChargeOutcome;
use crate::route::{
    cheapest_acquisition, kernel_home, kernel_home_eligible, least_loaded_eligible,
    power_of_two_pair, power_of_two_pair_eligible, Acquisition, ExclusionSet, RoutePolicy,
    TransferModel,
};
use crate::session::driver::{class_metrics_from, ArrivalAction, SessionDriver};
use crate::session::{
    PipelineOutcome, PipelineReport, PipelineRequest, ReorderBuffer, Session, SloClass,
};
use crate::{
    prepare_request, record_request_spans, BatchConfig, DispatchPolicy, DispatchRequest,
    Dispatcher, InFlight, Ingest, KernelCache, KernelKey, PrepContext, RejectedRequest,
    ReplicationConfig, Request, RequestOutcome, Runtime, RuntimeError, SimJob, SimMemo, SimResults,
    SimSourced, Submitter, TilePool,
};

/// One NoC tile array inside a [`Cluster`]: a [`TilePool`] (with its
/// residency index), the device-local kernel-image store, and the tile
/// dispatcher that places requests routed here.
#[derive(Debug)]
pub struct Device {
    id: usize,
    pool: TilePool,
    cache: KernelCache,
    dispatcher: Dispatcher,
    /// Tiles currently executing a request — the busy component of the
    /// cluster load index's per-device summary.
    busy_tiles: usize,
}

impl Device {
    /// The device id (its position on the linear inter-device link).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The device's tile pool (holding the state left by the last serve).
    pub fn pool(&self) -> &TilePool {
        &self.pool
    }

    /// The device-local kernel store (counters accumulate across serves).
    pub fn cache(&self) -> &KernelCache {
        &self.cache
    }

    /// The cluster load index's summary key for this device:
    /// `(waiting requests, busy tiles, id)` — least-loaded is the minimum.
    fn load_key(&self) -> (usize, usize, usize) {
        (self.pool.total_waiting(), self.busy_tiles, self.id)
    }

    fn enqueue(&mut self, tile: usize, key: KernelKey, est_us: f64) {
        self.pool.enqueue(tile, key, est_us);
    }

    fn charge(
        &mut self,
        tile: usize,
        key: KernelKey,
        arrival_us: f64,
        switch_us: f64,
        exec_us: f64,
    ) -> ChargeOutcome {
        self.busy_tiles += 1;
        self.pool.charge(tile, key, arrival_us, switch_us, exec_us)
    }

    #[allow(clippy::too_many_arguments)]
    fn start_queued(
        &mut self,
        tile: usize,
        est_us: f64,
        remaining_tail: Option<KernelKey>,
        key: KernelKey,
        arrival_us: f64,
        switch_us: f64,
        exec_us: f64,
    ) -> ChargeOutcome {
        self.busy_tiles += 1;
        self.pool.start_queued(
            tile,
            est_us,
            remaining_tail,
            key,
            arrival_us,
            switch_us,
            exec_us,
        )
    }

    fn release(&mut self, tile: usize) {
        self.busy_tiles -= 1;
        self.pool.release(tile);
    }
}

/// The result of one cluster serve: per-request outcomes (with their device
/// ids, in submission order), admission rejects, cluster-total
/// [`RuntimeMetrics`] and the per-device [`DeviceMetrics`] breakdown.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    policy: DispatchPolicy,
    route: RoutePolicy,
    outcomes: Vec<RequestOutcome>,
    rejected: Vec<RejectedRequest>,
    metrics: RuntimeMetrics,
    devices: Vec<DeviceMetrics>,
    replication: ReplicationStats,
    trace: Option<obs::Trace>,
    profile: Option<obs::ProfileStats>,
    telemetry: Option<obs::TimeSeries>,
    slo: Option<obs::SloReport>,
}

impl ClusterReport {
    /// Per-request outcomes of every *admitted* request, in submission
    /// order. Each outcome's [`device`](RequestOutcome::device) records the
    /// routing decision; [`tile`](RequestOutcome::tile) is device-local.
    pub fn outcomes(&self) -> &[RequestOutcome] {
        &self.outcomes
    }

    /// Requests rejected by admission control, in submission order.
    pub fn rejected(&self) -> &[RejectedRequest] {
        &self.rejected
    }

    /// Cluster-total serving metrics (per-tile vectors are device-major
    /// concatenations across the cluster).
    pub fn metrics(&self) -> &RuntimeMetrics {
        &self.metrics
    }

    /// The per-device metrics breakdown, indexed by device id.
    pub fn device_metrics(&self) -> &[DeviceMetrics] {
        &self.devices
    }

    /// The tile-dispatch policy that produced this report.
    pub fn policy(&self) -> DispatchPolicy {
        self.policy
    }

    /// The device-routing policy that produced this report.
    pub fn route_policy(&self) -> RoutePolicy {
        self.route
    }

    /// Total kernel images moved over the inter-device link.
    pub fn transfers(&self) -> usize {
        self.devices.iter().map(|d| d.transfers_in).sum()
    }

    /// Total bytes moved over the inter-device link.
    pub fn transfer_bytes(&self) -> u64 {
        self.devices.iter().map(|d| d.transfer_bytes_in).sum()
    }

    /// Total kernel images loaded from the host (local cold loads).
    pub fn host_loads(&self) -> usize {
        self.devices.iter().map(|d| d.host_loads).sum()
    }

    /// Total requests displaced off dead or draining devices and sent back
    /// through routing (0 on a fault-free serve).
    pub fn requeues(&self) -> usize {
        self.devices.iter().map(|d| d.requeues_out).sum()
    }

    /// Total started-but-abandoned execution time destroyed by device
    /// kills, in virtual microseconds (0 on a fault-free serve).
    pub fn lost_work_us(&self) -> f64 {
        self.devices.iter().map(|d| d.lost_work_us).sum()
    }

    /// Total faults (kills + drains) that hit the fleet during the serve.
    pub fn faults(&self) -> usize {
        self.devices.iter().map(|d| d.faults).sum()
    }

    /// Per-device availability — the fraction of the serve's makespan each
    /// device was alive and admitting, indexed by device id (all 1.0 on a
    /// fault-free serve).
    pub fn availability(&self) -> Vec<f64> {
        self.devices.iter().map(|d| d.availability).collect()
    }

    /// The replication layer's counters for this serve (all zero while
    /// replication is disabled, the default).
    pub fn replication(&self) -> ReplicationStats {
        self.replication
    }

    /// The recorded trace, when the serve ran with
    /// [`Cluster::with_tracing`] enabled.
    pub fn trace(&self) -> Option<&obs::Trace> {
        self.trace.as_ref()
    }

    /// Per-stage host-time attribution, when the serve ran with
    /// [`Cluster::with_profiling`] enabled.
    pub fn profile(&self) -> Option<&obs::ProfileStats> {
        self.profile.as_ref()
    }

    /// The windowed time-series over the serve's virtual timeline, when the
    /// serve ran with [`Cluster::with_telemetry`] enabled.
    pub fn telemetry(&self) -> Option<&obs::TimeSeries> {
        self.telemetry.as_ref()
    }

    /// SLO burn-rate evaluation of the telemetry series, when the serve ran
    /// with both [`Cluster::with_telemetry`] and [`Cluster::with_slo`]
    /// enabled.
    pub fn slo(&self) -> Option<&obs::SloReport> {
        self.slo.as_ref()
    }
}

/// Mutable event-loop state (the cluster mirror of the runtime's
/// `OnlineState`), separate from the `Cluster` so placement and bookkeeping
/// borrows stay disjoint.
struct ClusterState<'a> {
    /// Per-tile waiting queues, indexed by global tile id
    /// (`device * tiles_per_device + local`).
    queues: Vec<TileQueue>,
    taken: Vec<bool>,
    events: EventQueue,
    outcome_slots: Vec<Option<RequestOutcome>>,
    rejected: Vec<RejectedRequest>,
    sim: SimResults<'a>,
    /// The same-kernel batching layer, indexed by global tile id (a no-op
    /// at the default `max_batch = 1`).
    batcher: Batcher,
    /// The rate-driven replication layer (a no-op at the default fanout 0).
    replicator: Replicator,
    peak_queue_depth: usize,
    queue_area_us: f64,
    last_event_us: f64,
    /// Per intake index: the acquisition delay resolved at the arrival
    /// event, charged ahead of the context switch at start.
    acquire_us: Vec<f64>,
    /// Per device: high-water mark of that device's waiting count.
    device_peak_queue: Vec<usize>,
    /// Per device: requests routed here but shed by admission control.
    device_rejects: Vec<usize>,
    /// Per device: inter-device image transfers in (count, bytes).
    device_transfers: Vec<(usize, u64)>,
    /// Per device: host image loads.
    device_host_loads: Vec<usize>,
    /// The span recorder (inert at the default disabled config).
    recorder: obs::TraceRecorder,
    /// The host-time stage profiler (inert unless profiling is on).
    profiler: obs::StageProfiler,
    /// Cluster-wide queue depth sampled at every event pop.
    queue_depth_hist: obs::LogHistogram,
    /// Per device: latency histogram recorded at charge time, merged into
    /// the cluster total through the histogram merge path.
    device_latency_hists: Vec<obs::LogHistogram>,
    /// Per intake index: the committed acquisition's `(source, bytes)`,
    /// carried to the start event for the trace's acquire span.
    acquire_src: Vec<(&'static str, u64)>,
    /// Per intake index: devices this request was displaced off by a fault
    /// — routing avoids them while any other serviceable device exists.
    /// Empty (and never consulted) on a fault-free serve.
    exclusions: Vec<ExclusionSet>,
    /// Per global tile: the intake index currently running there.
    /// Maintained only under a fault plan (kills must know what to
    /// abandon).
    running_index: Vec<Option<usize>>,
    /// Per global tile: the completion time of the run the tile is waiting
    /// on. Under a fault plan, a tile-free event that does not match is a
    /// stale completion of evacuated work and is dropped.
    pending_free: Vec<Option<f64>>,
    /// The session tier's driver, present only on the
    /// [`Cluster::serve_pipelines`] multi-stage path. `None` — every other
    /// serve — keeps each session branch off the hot path.
    session: Option<SessionDriver>,
    /// Per intake index: the inter-stage activation delay priced at the
    /// routing commit, charged ahead of the context switch at start. All
    /// zero (and bitwise-free at the charge sites) without a session
    /// driver.
    activation_us: Vec<f64>,
    /// Per device: the windowed-telemetry lane partition (inert at the
    /// default disabled config). Request commits accumulate in per-device
    /// serial order — identical between this loop and the device's shard
    /// lane, the bitwise sharded-equivalence property.
    lane_series: Vec<obs::LaneSeries>,
    /// The cross-device queue-depth integral, accumulated in serial event
    /// order (the sharded loop replays it in its commit stage).
    global_series: obs::GlobalSeries,
}

/// What the cluster event loop hands back for aggregation.
struct ClusterLoopOutput {
    outcomes: Vec<RequestOutcome>,
    rejected: Vec<RejectedRequest>,
    peak_queue_depth: usize,
    queue_area_us: f64,
    events_fired: u64,
    batch: BatchStats,
    replication: ReplicationStats,
    device_peak_queue: Vec<usize>,
    device_rejects: Vec<usize>,
    device_transfers: Vec<(usize, u64)>,
    device_host_loads: Vec<usize>,
    trace: Option<obs::Trace>,
    profile: Option<obs::ProfileStats>,
    queue_depth_hist: obs::LogHistogram,
    device_latency_hists: Vec<obs::LogHistogram>,
    telemetry: Option<obs::TimeSeries>,
    slo: Option<obs::SloReport>,
}

/// A multi-device serving cluster over one overlay variant.
///
/// See the [module-level documentation](self) for the moving parts and an
/// end-to-end example. The builder methods mirror [`Runtime`]'s; a
/// 1-device cluster behaves bitwise identically to the equivalent
/// `Runtime`.
#[derive(Debug)]
pub struct Cluster {
    devices: Vec<Device>,
    route: RoutePolicy,
    transfer: TransferModel,
    sim_memo: SimMemo,
    reconfig: ReconfigModel,
    lower: LowerOptions,
    ingest_capacity: usize,
    admission_limit: usize,
    batching: BatchConfig,
    replication: ReplicationConfig,
    tracing: obs::TraceConfig,
    /// Recorder kept across serves so the ring's backing allocation (and
    /// its warmed pages) amortize instead of being re-faulted per serve —
    /// same idiom as `Runtime::trace_scratch`.
    trace_scratch: obs::TraceRecorder,
    profiling: bool,
    tiles_per_device: usize,
    /// Ordered `(waiting, busy, device)` summaries — `first()` is the
    /// least-loaded device, the device-tier mirror of the pool residency
    /// index's per-kernel "best" entries.
    load_index: BTreeSet<(usize, usize, usize)>,
    /// Host-thread budget for sharded batch serves
    /// ([`Cluster::with_threads`]); 1 keeps the serial loop.
    threads: usize,
    /// Whether a past serve may have adopted a kernel image into a store
    /// other than the kernel's home shard (dynamic routing or replication
    /// on a multi-device cluster). The sharded loop assumes images live
    /// only on their home shards, so this poisons its eligibility until
    /// the stores are rebuilt.
    cross_shard_images: bool,
    /// The installed fault schedule, if any ([`Cluster::with_fault_plan`]).
    fault_plan: Option<FaultPlan>,
    /// Per-serve fault state (fleet flags + availability accounting),
    /// rebuilt from the plan at the start of every serve. `None` — the
    /// default — keeps every fault branch off the hot path.
    fault: Option<FaultState>,
    /// Whether pipeline routing may keep a stage near its producer's
    /// output ([`Cluster::with_stage_affinity`]). Only consulted on the
    /// [`Cluster::serve_pipelines`] multi-stage path.
    stage_affinity: bool,
    /// The session driver staged for (and recovered from) the event loop
    /// on a pipeline serve. Always `None` between serves.
    session_driver: Option<SessionDriver>,
    /// Windowed-telemetry configuration (off by default).
    telemetry: obs::TelemetryConfig,
    /// SLO burn-rate objectives (off by default; needs telemetry).
    slo: obs::SloConfig,
}

impl Cluster {
    /// A cluster of `devices` identical arrays, each a single-row NoC of
    /// `tiles_per_device` parallel-composition tiles of `variant`, using
    /// kernel-affinity tile dispatch and kernel-hash device routing.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::EmptyCluster`] when `devices` is 0 and
    /// [`RuntimeError::EmptyPool`] when `tiles_per_device` is 0.
    pub fn new(
        variant: FuVariant,
        devices: usize,
        tiles_per_device: usize,
    ) -> Result<Self, RuntimeError> {
        if devices == 0 {
            return Err(RuntimeError::EmptyCluster);
        }
        let devices: Vec<Device> = (0..devices)
            .map(|id| {
                Ok(Device {
                    id,
                    pool: TilePool::with_tiles(
                        variant,
                        TileComposition::Parallel,
                        tiles_per_device,
                    )?,
                    cache: KernelCache::new(Runtime::DEFAULT_CACHE_CAPACITY)
                        .expect("default capacity is non-zero"),
                    dispatcher: Dispatcher::default(),
                    busy_tiles: 0,
                })
            })
            .collect::<Result<_, RuntimeError>>()?;
        let mut cluster = Cluster {
            devices,
            route: RoutePolicy::default(),
            transfer: TransferModel::default(),
            sim_memo: SimMemo::new(Runtime::DEFAULT_SIM_MEMO_CAPACITY),
            reconfig: ReconfigModel::new(),
            lower: LowerOptions::default(),
            ingest_capacity: Runtime::DEFAULT_INGEST_CAPACITY,
            admission_limit: usize::MAX,
            batching: BatchConfig::disabled(),
            replication: ReplicationConfig::disabled(),
            tracing: obs::TraceConfig::disabled(),
            trace_scratch: obs::TraceRecorder::new(obs::TraceConfig::disabled()),
            profiling: false,
            tiles_per_device,
            load_index: BTreeSet::new(),
            threads: 1,
            cross_shard_images: false,
            fault_plan: None,
            fault: None,
            stage_affinity: true,
            session_driver: None,
            telemetry: obs::TelemetryConfig::disabled(),
            slo: obs::SloConfig::disabled(),
        };
        cluster.rebuild_load_index();
        Ok(cluster)
    }

    /// Sets the tile-dispatch policy used inside every device.
    #[must_use]
    pub fn with_policy(mut self, policy: DispatchPolicy) -> Self {
        for device in &mut self.devices {
            device.dispatcher = Dispatcher::new(policy);
        }
        self
    }

    /// Sets the device-routing policy.
    #[must_use]
    pub fn with_route_policy(mut self, route: RoutePolicy) -> Self {
        self.route = route;
        self
    }

    /// Overrides the inter-device/host transfer timing model.
    #[must_use]
    pub fn with_transfer_model(mut self, transfer: TransferModel) -> Self {
        self.transfer = transfer;
        self
    }

    /// Replaces every device's kernel store with one of `capacity` entries.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::ZeroCacheCapacity`] when `capacity` is 0.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Result<Self, RuntimeError> {
        for device in &mut self.devices {
            device.cache = KernelCache::new(capacity)?;
        }
        // Fresh stores hold no cross-shard images.
        self.cross_shard_images = false;
        Ok(self)
    }

    /// Replaces the (cluster-shared) simulation memo with one of `capacity`
    /// entries. A capacity of 0 disables memoization *and* in-flight
    /// deduplication — every request simulates.
    #[must_use]
    pub fn with_sim_memo_capacity(mut self, capacity: usize) -> Self {
        self.sim_memo = SimMemo::new(capacity);
        self
    }

    /// Sets the bound of the streaming ingest channel.
    #[must_use]
    pub fn with_ingest_capacity(mut self, capacity: usize) -> Self {
        self.ingest_capacity = capacity;
        self
    }

    /// Sets the cluster-wide admission-control limit on *waiting* requests
    /// (same semantics as [`Runtime::with_admission_limit`]: an arrival that
    /// starts immediately on its routed tile is always admitted).
    #[must_use]
    pub fn with_admission_limit(mut self, limit: usize) -> Self {
        self.admission_limit = limit;
        self
    }

    /// Overrides the reconfiguration timing model.
    #[must_use]
    pub fn with_reconfig(mut self, model: ReconfigModel) -> Self {
        self.reconfig = model;
        self
    }

    /// Configures the same-kernel batching layer on every device's tiles
    /// (same semantics as [`Runtime::with_batching`]).
    #[must_use]
    pub fn with_batching(mut self, config: BatchConfig) -> Self {
        self.batching = config;
        self
    }

    /// Configures rate-driven kernel replication: hot kernels (by the
    /// per-kernel EWMA the routing tier feeds) have their images pushed to
    /// the least-loaded devices ahead of demand, and cold pushed replicas
    /// are demoted under store pressure. Disabled by default.
    #[must_use]
    pub fn with_replication(mut self, config: ReplicationConfig) -> Self {
        self.replication = config;
        self
    }

    /// Configures request-span tracing (same semantics as
    /// [`Runtime::with_tracing`]): disabled by default, and disabled is
    /// bitwise-free. The recorded [`Trace`](obs::Trace) comes back on
    /// [`ClusterReport::trace`].
    #[must_use]
    pub fn with_tracing(mut self, config: obs::TraceConfig) -> Self {
        self.tracing = config;
        self.trace_scratch = obs::TraceRecorder::new(config);
        self
    }

    /// Enables host-time stage profiling (same semantics as
    /// [`Runtime::with_profiling`]); the attribution comes back on
    /// [`ClusterReport::profile`].
    #[must_use]
    pub fn with_profiling(mut self, enabled: bool) -> Self {
        self.profiling = enabled;
        self
    }

    /// Configures windowed telemetry (same semantics as
    /// [`Runtime::with_telemetry`]): disabled by default, and disabled is
    /// bitwise-free. The [`TimeSeries`](obs::TimeSeries) comes back on
    /// [`ClusterReport::telemetry`], accumulated identically by the serial
    /// and sharded ([`Cluster::with_threads`]) loops.
    #[must_use]
    pub fn with_telemetry(mut self, config: obs::TelemetryConfig) -> Self {
        self.telemetry = config;
        self
    }

    /// Configures SLO burn-rate objectives (same semantics as
    /// [`Runtime::with_slo`]; needs [`Cluster::with_telemetry`]). The
    /// tracking comes back on [`ClusterReport::slo`], with burn alerts
    /// recorded as [`SloBurn`](obs::SpanKind::SloBurn) /
    /// [`SloClear`](obs::SpanKind::SloClear) trace spans when tracing is on.
    #[must_use]
    pub fn with_slo(mut self, config: obs::SloConfig) -> Self {
        self.slo = config;
        self
    }

    /// Installs a [`FaultPlan`]: its events are scheduled into the serve's
    /// virtual timeline and the loop reacts as they fire — kills displace
    /// and requeue work with the dead device excluded, drains stop
    /// admission but finish resident work, revivals rejoin routing, link
    /// degradation reprices transfers. The plan is validated at serve time
    /// ([`RuntimeError::InvalidFaultPlan`] on a bad schedule). No plan —
    /// the default — leaves the serve bitwise identical to a fault-free
    /// build.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// The installed fault schedule, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Enables or disables stage-affinity routing for pipeline serves
    /// (**on** by default): when a pipeline stage's inputs live on a
    /// device other than the one routing picked, the cluster may override
    /// the choice with the producer of the heaviest input — if the
    /// activation-transfer savings outweigh the estimated extra queueing
    /// there. Plain [`serve`](Cluster::serve) traffic is unaffected either
    /// way.
    #[must_use]
    pub fn with_stage_affinity(mut self, enabled: bool) -> Self {
        self.stage_affinity = enabled;
        self
    }

    /// Whether stage-affinity routing is enabled for pipeline serves.
    pub fn stage_affinity(&self) -> bool {
        self.stage_affinity
    }

    /// Shards batch serves across up to `threads` host threads, one event
    /// lane per device, with a serial commit stage merging the lanes back
    /// into the exact single-threaded event order (see [`shard`](self)'s
    /// module notes). `threads = 1` — the default — keeps the serial loop.
    ///
    /// The sharded loop engages only when it can prove the lanes are
    /// independent: more than one device, static kernel-hash routing, no
    /// admission limit, replication off, and no store holding another
    /// shard's image from an earlier dynamically-routed serve. Any other
    /// configuration (and every streaming serve) falls back to the serial
    /// loop, so results are identical either way; the output is also
    /// deterministic across runs and across `threads` values.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Overrides the front-end lowering options, clearing every device's
    /// kernel store and the simulation memo (cached artifacts were compiled
    /// under the old options).
    #[must_use]
    pub fn with_lower_options(mut self, options: LowerOptions) -> Self {
        self.lower = options;
        for device in &mut self.devices {
            device.cache.clear();
        }
        self.sim_memo.clear();
        // Cleared stores hold no cross-shard images.
        self.cross_shard_images = false;
        self
    }

    /// The overlay variant all devices are built from.
    pub fn variant(&self) -> FuVariant {
        self.devices[0].pool.variant()
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Tiles on each device.
    pub fn tiles_per_device(&self) -> usize {
        self.tiles_per_device
    }

    /// Total tiles across the cluster.
    pub fn total_tiles(&self) -> usize {
        self.num_devices() * self.tiles_per_device
    }

    /// The active tile-dispatch policy.
    pub fn policy(&self) -> DispatchPolicy {
        self.devices[0].dispatcher.policy()
    }

    /// The active device-routing policy.
    pub fn route_policy(&self) -> RoutePolicy {
        self.route
    }

    /// The active transfer model.
    pub fn transfer_model(&self) -> TransferModel {
        self.transfer
    }

    /// The cluster-wide admission-control limit on waiting requests.
    pub fn admission_limit(&self) -> usize {
        self.admission_limit
    }

    /// The active same-kernel batching configuration.
    pub fn batching(&self) -> BatchConfig {
        self.batching
    }

    /// The active replication configuration.
    pub fn replication_config(&self) -> ReplicationConfig {
        self.replication
    }

    /// The active tracing configuration.
    pub fn tracing(&self) -> obs::TraceConfig {
        self.tracing
    }

    /// Whether host-time stage profiling is on.
    pub fn profiling(&self) -> bool {
        self.profiling
    }

    /// The configured host-thread budget for sharded batch serves.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The devices (holding the state left by the last serve).
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// The shared simulation memo (counters accumulate across serves).
    pub fn sim_memo(&self) -> &SimMemo {
        &self.sim_memo
    }

    /// Serves a pre-collected trace, exactly as
    /// [`serve_stream`](Cluster::serve_stream) would serve it live (same
    /// semantics as [`Runtime::serve`]).
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] for an empty trace, invalid or
    /// out-of-order arrival times, or any compile/simulation failure.
    pub fn serve<I>(&mut self, requests: I) -> Result<ClusterReport, RuntimeError>
    where
        I: IntoIterator<Item = Request>,
    {
        let requests: Vec<Request> = requests.into_iter().collect();
        if self.sharded_eligible() {
            return self.serve_sharded(requests);
        }
        self.run_serve(
            Ingest::Batch(requests.into_iter()),
            None::<(fn(Submitter), _)>,
        )
    }

    /// Whether a batch serve takes the sharded (parallel) event loop: a
    /// thread budget above 1 and a configuration where device lanes are
    /// provably independent — several devices, static kernel-hash routing
    /// (the only cross-shard edge is then the submission schedule),
    /// unlimited admission (admission reads the cluster-wide waiting
    /// count), replication off (a push writes a foreign store mid-serve),
    /// and no store poisoned with another shard's image by an earlier
    /// dynamically-routed serve.
    fn sharded_eligible(&self) -> bool {
        self.threads > 1
            && self.num_devices() > 1
            && self.route.is_statically_sharded()
            && self.admission_limit == usize::MAX
            && !self.replication.enabled()
            && !self.cross_shard_images
            && self.fault_plan.is_none()
    }

    /// Serves a live request stream through a [`Submitter`] (same contract
    /// as [`Runtime::serve_stream`]: non-decreasing arrival order, bounded
    /// ingest backpressure, the serve ends when `feed` returns).
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] when nothing was submitted, for invalid
    /// or out-of-order arrival times, or for any compile/simulation
    /// failure.
    pub fn serve_stream<F>(&mut self, feed: F) -> Result<ClusterReport, RuntimeError>
    where
        F: FnOnce(Submitter) + Send,
    {
        let (ingest_tx, ingest_rx) = mpsc::sync_channel::<Arc<Request>>(self.ingest_capacity);
        self.run_serve(Ingest::Stream(ingest_rx), Some((feed, ingest_tx)))
    }

    /// Serves a batch of multi-kernel [`PipelineRequest`]s under tenant
    /// [`Session`]s (see the [`session`](crate::session) module docs): each
    /// pipeline's DAG is validated up front, its stages flow through the
    /// normal route/admit/place machinery with dependency parking, stage
    /// affinity, [`TransferModel`]-priced inter-stage activations and
    /// weighted-fair SLO admission, and the outcomes commit in submission
    /// order per session through a reorder buffer.
    ///
    /// A pipeline naming a session absent from `sessions` runs as
    /// [`SloClass::Standard`]. A batch of single-stage pipelines under
    /// all-standard sessions lowers onto the unchanged
    /// [`serve`](Cluster::serve) path — bitwise identical to serving the
    /// plain requests.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidPipeline`] for a malformed DAG,
    /// [`RuntimeError::NoRequests`] for an empty batch, and any
    /// compile/simulation failure the underlying serve can raise.
    pub fn serve_pipelines(
        &mut self,
        pipelines: Vec<PipelineRequest>,
        sessions: &[Session],
    ) -> Result<PipelineReport, RuntimeError> {
        if pipelines.is_empty() {
            return Err(RuntimeError::NoRequests);
        }
        let mut topos = Vec::with_capacity(pipelines.len());
        for pipeline in &pipelines {
            topos.push(pipeline.validate()?);
        }
        let slo_of: BTreeMap<u64, SloClass> = sessions
            .iter()
            .map(|session| (session.id, session.slo))
            .collect();
        let all_plain = pipelines.iter().all(|pipeline| {
            pipeline.is_single_stage()
                && slo_of.get(&pipeline.session).copied().unwrap_or_default() == SloClass::Standard
        });
        if all_plain {
            return self.serve_single_stage_pipelines(&pipelines, &slo_of);
        }
        let (driver, requests) =
            SessionDriver::build(&pipelines, &topos, &slo_of, self.stage_affinity);
        self.session_driver = Some(driver);
        let result = self.run_serve(
            Ingest::Batch(requests.into_iter()),
            None::<(fn(Submitter), _)>,
        );
        // The loop hands the driver back through `self` on success; an
        // error drops it (there is no report to build).
        let driver = self.session_driver.take();
        let cluster = result?;
        let driver = driver.expect("a completed pipeline serve hands its driver back");
        debug_assert_eq!(driver.in_flight(), 0, "every pipeline's fate is sealed");
        let (pipelines, stages, classes) = driver.into_report();
        Ok(PipelineReport {
            cluster,
            pipelines,
            stages,
            classes,
        })
    }

    /// The all-single-stage, all-standard fast path of
    /// [`serve_pipelines`](Cluster::serve_pipelines): lowers each pipeline
    /// to its plain [`Request`] and runs the unchanged
    /// [`serve`](Cluster::serve) — including its sharded loop — then
    /// rebuilds the pipeline-level view from the plain report. This is the
    /// path the equivalence proptests pin bitwise against PR-8 serving.
    fn serve_single_stage_pipelines(
        &mut self,
        pipelines: &[PipelineRequest],
        slo_of: &BTreeMap<u64, SloClass>,
    ) -> Result<PipelineReport, RuntimeError> {
        let requests: Vec<Request> = pipelines
            .iter()
            .map(PipelineRequest::lower_to_request)
            .collect();
        let cluster = self.serve(requests)?;
        // Completions by request id, in submission order per id — caller
        // ids need not be unique, so each id keys a FIFO of completions.
        let mut completions: BTreeMap<u64, std::collections::VecDeque<f64>> = BTreeMap::new();
        for outcome in cluster.outcomes() {
            completions
                .entry(outcome.request_id)
                .or_default()
                .push_back(outcome.completion_us);
        }
        let mut rob = ReorderBuffer::new(pipelines.len());
        for (index, pipeline) in pipelines.iter().enumerate() {
            rob.push(pipeline.session, index);
        }
        let mut outcomes: Vec<PipelineOutcome> = pipelines
            .iter()
            .map(|pipeline| {
                let slo = slo_of.get(&pipeline.session).copied().unwrap_or_default();
                let finish = completions
                    .get_mut(&pipeline.id)
                    .and_then(std::collections::VecDeque::pop_front);
                PipelineOutcome {
                    id: pipeline.id,
                    session: pipeline.session,
                    slo,
                    arrival_us: pipeline.arrival_us,
                    finish_us: finish.unwrap_or(pipeline.arrival_us),
                    commit_us: pipeline.arrival_us,
                    stages: 1,
                    completed_stages: usize::from(finish.is_some()),
                    rejected: finish.is_none(),
                    transfers: 0,
                    transfer_us: 0.0,
                    deadline_us: pipeline.deadline_us,
                    missed_deadline: false,
                }
            })
            .collect();
        // Feeding finishes in submission order retires each pipeline as
        // the head of its session's run: commit = max(finish, previous
        // commit in the session).
        for index in 0..outcomes.len() {
            let (session, finish) = (outcomes[index].session, outcomes[index].finish_us);
            for (retired, commit_us) in rob.finish(session, index, finish) {
                outcomes[retired].commit_us = commit_us;
            }
        }
        for outcome in &mut outcomes {
            outcome.missed_deadline = !outcome.rejected
                && outcome
                    .deadline_us
                    .is_some_and(|deadline| outcome.commit_us > deadline);
        }
        let mut samples: Vec<f64> = outcomes
            .iter()
            .filter(|outcome| !outcome.rejected)
            .map(|outcome| outcome.finish_us - outcome.arrival_us)
            .collect();
        let stages = vec![metrics::StageMetrics::from_samples(0, &mut samples, 0, 0.0)];
        let classes = class_metrics_from(&outcomes);
        Ok(PipelineReport {
            cluster,
            pipelines: outcomes,
            stages,
            classes,
        })
    }

    /// The cluster-wide waiting count (what admission control bounds and
    /// the queue-area integrand): O(devices) over the per-pool O(1)
    /// counters.
    fn waiting_count(&self) -> usize {
        self.devices.iter().map(|d| d.pool.total_waiting()).sum()
    }

    fn rebuild_load_index(&mut self) {
        self.load_index = self.devices.iter().map(Device::load_key).collect();
    }

    /// Applies `mutate` to one device, keeping the cluster load index
    /// coherent around the transition — the device-tier mirror of the
    /// pool's `transition`.
    fn with_load_update<R>(&mut self, device: usize, mutate: impl FnOnce(&mut Device) -> R) -> R {
        let before = self.devices[device].load_key();
        let result = mutate(&mut self.devices[device]);
        let after = self.devices[device].load_key();
        if before != after {
            // A dead or draining device was already pulled from the index
            // (fault injection); its transitions — e.g. a draining tile
            // finishing resident work — must not re-insert it.
            if self.load_index.remove(&before) {
                self.load_index.insert(after);
            }
        }
        result
    }

    /// The transfer model in force right now: the configured one, slowed by
    /// the fault tier's fleet-wide link multiplier when degradation is
    /// active.
    fn active_transfer(&self) -> TransferModel {
        match &self.fault {
            Some(fault) if fault.link_multiplier != 1.0 => {
                self.transfer.degraded(fault.link_multiplier)
            }
            _ => self.transfer,
        }
    }

    /// How `device` would obtain `key`'s compiled image, without mutating
    /// anything: resident in its store, a host load, or a transfer from the
    /// nearest peer holding the image — whichever is cheaper. The rule is
    /// uniform across devices (a home shard whose store evicted the image
    /// pays to re-acquire it like anyone else); only a 1-device cluster is
    /// exempt, because it has no peers and [`Runtime`] — which it must
    /// match bitwise — models no separate host image path (the
    /// `ReconfigModel` switch *is* the whole load there).
    fn peek_acquisition(&self, device: usize, key: KernelKey, bytes: usize) -> Acquisition {
        if self.num_devices() == 1 || self.devices[device].cache.contains(&key) {
            return Acquisition::Resident;
        }
        cheapest_acquisition(&self.active_transfer(), self.holders(key), device, bytes)
    }

    /// The devices whose stores currently hold `key`'s image.
    fn holders(&self, key: KernelKey) -> impl Iterator<Item = usize> + '_ {
        self.devices
            .iter()
            .filter(move |device| device.cache.contains(&key))
            .map(Device::id)
    }

    /// Commits an admitted request's acquisition: adopts the image into the
    /// routed device's store (counting the store lookup and refreshing its
    /// LRU slot) and records the transfer/host-load traffic. Returns the
    /// acquisition delay to charge ahead of the context switch.
    ///
    /// The charge is *single-payer by design*: the image enters the store
    /// now, and the requester that triggered the fetch carries its delay in
    /// its own switch phase; later arrivals for the same kernel find the
    /// image resident and ride the same fetch for free — the image-store
    /// analogue of the in-flight simulation joins. A 1-device cluster
    /// never commits anything (see `peek_acquisition`).
    fn commit_acquisition(
        &mut self,
        device: usize,
        info: &InFlight,
        acquisition: Acquisition,
        state: &mut ClusterState<'_>,
    ) -> f64 {
        match acquisition {
            Acquisition::Resident => {
                if self.num_devices() > 1 {
                    self.devices[device]
                        .cache
                        .get_or_share(info.view.key, &info.compiled);
                }
                0.0
            }
            Acquisition::HostLoad { cost_us } => {
                self.devices[device]
                    .cache
                    .get_or_share(info.view.key, &info.compiled);
                state.device_host_loads[device] += 1;
                cost_us
            }
            Acquisition::Transfer { cost_us, bytes, .. } => {
                self.devices[device]
                    .cache
                    .get_or_share(info.view.key, &info.compiled);
                let (count, total_bytes) = &mut state.device_transfers[device];
                *count += 1;
                *total_bytes += bytes as u64;
                cost_us
            }
        }
    }

    /// The replication step, run at every arrival before routing: feeds the
    /// per-kernel rate EWMA (the routing tier sees every submission) and,
    /// when the kernel is hot, pushes its image onto the
    /// [`ReplicationConfig::fanout`] least-loaded devices that do not hold
    /// it — through the same [`KernelCache::get_or_share`] adoption path a
    /// demand fetch uses — so the routing decision that follows (and every
    /// later one) sees a warm replica instead of charging a transfer. A
    /// pressured target store first demotes one of replication's own cold
    /// replicas instead of letting LRU evict blindly. The modeled prefetch
    /// cost (the cheapest [`TransferModel`] source) is accounted as
    /// off-critical-path traffic in [`ReplicationStats`].
    fn replicate(&mut self, info: &InFlight, now_us: f64, state: &mut ClusterState<'_>) {
        let ClusterState {
            replicator,
            recorder,
            ..
        } = state;
        if !replicator.enabled() {
            return;
        }
        let key = info.view.key;
        if !replicator.observe(key, now_us) {
            return;
        }
        let fanout = replicator.config().fanout;
        let targets: Vec<usize> = self
            .load_index
            .iter()
            .take(fanout)
            .map(|&(_, _, device)| device)
            .collect();
        for device in targets {
            if self.devices[device].cache.contains(&key) {
                continue;
            }
            // A push onto a full store must free a slot by demoting one of
            // replication's own cooled replicas; if no tracked replica is
            // demotable, the push is skipped — a prefetch must never let LRU
            // blindly evict the device's home image or hot working set.
            let mut has_room =
                self.devices[device].cache.len() < self.devices[device].cache.capacity();
            while !has_room {
                let Some(victim) = replicator.demotion_candidate(device, now_us) else {
                    break;
                };
                if self.devices[device].cache.remove(&victim) {
                    replicator.note_demoted(device, victim);
                    recorder.counter(now_us, device, obs::CounterName::ReplicaDemoted);
                    has_room = true;
                } else {
                    // Demand LRU already evicted this replica; just stop
                    // tracking it and try the next candidate.
                    replicator.forget(device, victim);
                }
            }
            if !has_room {
                continue;
            }
            let cost_us = cheapest_acquisition(
                &self.active_transfer(),
                self.holders(key),
                device,
                info.image_bytes,
            )
            .cost_us();
            self.devices[device].cache.get_or_share(key, &info.compiled);
            replicator.note_pushed(device, key, info.image_bytes, cost_us);
            if recorder.enabled() {
                recorder.record(obs::TraceEvent {
                    time_us: now_us,
                    dur_us: 0.0,
                    request_id: None,
                    device,
                    tile: None,
                    kind: obs::SpanKind::Prefetch {
                        bytes: info.image_bytes as u64,
                    },
                });
                recorder.counter(now_us, device, obs::CounterName::ReplicaPushed);
            }
        }
    }

    /// The `(completion, needs switch, evicts warm, device)` estimate for
    /// serving `info` on `device`, acquisition cost included — the
    /// cross-device comparison key power-of-two routing minimizes. Returns
    /// the acquisition alongside so the winner's is not recomputed.
    fn completion_estimate(
        &self,
        device: usize,
        info: &InFlight,
        now_us: f64,
    ) -> ((f64, bool, bool, usize), Acquisition) {
        let acquisition = self.peek_acquisition(device, info.view.key, info.image_bytes);
        let (completion, needs_switch, evicts_warm, _tile) =
            self.devices[device].pool.earliest_candidate_indexed(
                info.view.key,
                info.view.est_exec_us,
                info.view.switch_us + acquisition.cost_us(),
                now_us,
            );
        ((completion, needs_switch, evicts_warm, device), acquisition)
    }

    /// The routing decision at an arrival event: the chosen device plus how
    /// it will acquire the kernel image (computed once, here). When tracing
    /// is on, the decision is recorded as a route-choice span carrying every
    /// candidate's completion estimate — under power-of-two-choices that
    /// exposes the losing device's estimate next to the winner's.
    fn route_device(
        &self,
        info: &InFlight,
        now_us: f64,
        recorder: &mut obs::TraceRecorder,
    ) -> (usize, Acquisition) {
        let devices = self.num_devices();
        let mut candidates: Vec<(usize, f64)> = Vec::new();
        let (device, acquisition) = if devices == 1 {
            (0, Acquisition::Resident)
        } else {
            match self.route {
                RoutePolicy::KernelHash => {
                    let device = kernel_home(info.view.key.fingerprint, devices);
                    (
                        device,
                        self.peek_acquisition(device, info.view.key, info.image_bytes),
                    )
                }
                RoutePolicy::LeastLoaded => {
                    let device = self
                        .load_index
                        .first()
                        .expect("a non-empty cluster always has a least-loaded device")
                        .2;
                    (
                        device,
                        self.peek_acquisition(device, info.view.key, info.image_bytes),
                    )
                }
                RoutePolicy::PowerOfTwoChoices => {
                    let (first, second) =
                        power_of_two_pair(info.view.key.fingerprint, info.request.id, devices);
                    let (a, a_acquisition) = self.completion_estimate(first, info, now_us);
                    let (b, b_acquisition) = self.completion_estimate(second, info, now_us);
                    if recorder.enabled() {
                        candidates.push((a.3, a.0));
                        candidates.push((b.3, b.0));
                    }
                    if b < a {
                        (b.3, b_acquisition)
                    } else {
                        (a.3, a_acquisition)
                    }
                }
            }
        };
        if recorder.enabled() {
            recorder.record(obs::TraceEvent {
                time_us: now_us,
                dur_us: 0.0,
                request_id: Some(info.request.id),
                device,
                tile: None,
                kind: obs::SpanKind::RouteChoice(Box::new(obs::RouteChoice {
                    policy: self.route.label(),
                    chosen: device,
                    candidates,
                })),
            });
        }
        (device, acquisition)
    }

    /// The fault-aware routing decision: like [`route_device`]
    /// (same policies, same comparison keys, the same route-choice span)
    /// but restricted to devices that can actually serve. Devices the
    /// request was already displaced off are avoided while any other
    /// serviceable device exists; if only they remain (e.g. the device
    /// revived), they become eligible again rather than shedding the
    /// request spuriously. Returns `None` only when no device in the
    /// fleet is alive and admitting.
    ///
    /// With every device available and no exclusions the selectors reduce
    /// exactly to the fault-free ones, which is what pins an empty
    /// [`FaultPlan`] bitwise-identical to no plan at all.
    ///
    /// [`route_device`]: Cluster::route_device
    fn route_device_excluding(
        &self,
        info: &InFlight,
        now_us: f64,
        exclusions: &ExclusionSet,
        recorder: &mut obs::TraceRecorder,
    ) -> Option<(usize, Acquisition)> {
        let fault = self
            .fault
            .as_ref()
            .expect("exclusion routing only runs under a fault plan");
        let mut candidates: Vec<(usize, f64)> = Vec::new();
        let want_candidates = recorder.enabled();
        let strict = |device: usize| fault.available(device) && !exclusions.contains(device);
        let relaxed = |device: usize| fault.available(device);
        let picked = self
            .pick_eligible(info, now_us, strict, want_candidates, &mut candidates)
            .or_else(|| {
                if exclusions.is_empty() {
                    None // relaxed == strict; nothing new to try
                } else {
                    self.pick_eligible(info, now_us, relaxed, want_candidates, &mut candidates)
                }
            });
        let (device, acquisition) = picked?;
        if recorder.enabled() {
            recorder.record(obs::TraceEvent {
                time_us: now_us,
                dur_us: 0.0,
                request_id: Some(info.request.id),
                device,
                tile: None,
                kind: obs::SpanKind::RouteChoice(Box::new(obs::RouteChoice {
                    policy: self.route.label(),
                    chosen: device,
                    candidates,
                })),
            });
        }
        Some((device, acquisition))
    }

    /// One eligibility-filtered pass of the routing policy — the selector
    /// core [`route_device_excluding`](Cluster::route_device_excluding)
    /// runs once strictly and once relaxed.
    fn pick_eligible(
        &self,
        info: &InFlight,
        now_us: f64,
        eligible: impl Fn(usize) -> bool + Copy,
        want_candidates: bool,
        candidates: &mut Vec<(usize, f64)>,
    ) -> Option<(usize, Acquisition)> {
        let devices = self.num_devices();
        if devices == 1 {
            return eligible(0).then_some((0, Acquisition::Resident));
        }
        match self.route {
            RoutePolicy::KernelHash => {
                kernel_home_eligible(info.view.key.fingerprint, devices, eligible).map(|device| {
                    (
                        device,
                        self.peek_acquisition(device, info.view.key, info.image_bytes),
                    )
                })
            }
            RoutePolicy::LeastLoaded => {
                least_loaded_eligible(self.load_index.iter().copied(), eligible).map(|device| {
                    (
                        device,
                        self.peek_acquisition(device, info.view.key, info.image_bytes),
                    )
                })
            }
            RoutePolicy::PowerOfTwoChoices => power_of_two_pair_eligible(
                info.view.key.fingerprint,
                info.request.id,
                devices,
                eligible,
            )
            .map(|(first, second)| {
                let (a, a_acquisition) = self.completion_estimate(first, info, now_us);
                let (b, b_acquisition) = self.completion_estimate(second, info, now_us);
                if want_candidates {
                    candidates.push((a.3, a.0));
                    if second != first {
                        candidates.push((b.3, b.0));
                    }
                }
                if b < a {
                    (b.3, b_acquisition)
                } else {
                    (a.3, a_acquisition)
                }
            }),
        }
    }

    /// Sheds a request no device can serve (the whole fleet is dead or
    /// draining). Counted in the cluster-total rejects but not against any
    /// device's [`DeviceMetrics::rejects`] — there is no device to blame —
    /// so per-device rejects need not sum to the cluster total on a faulty
    /// serve.
    fn reject_unroutable(
        &self,
        index: usize,
        info: &InFlight,
        now_us: f64,
        state: &mut ClusterState<'_>,
    ) {
        if state.recorder.enabled() {
            state.recorder.record(obs::TraceEvent {
                time_us: now_us,
                dur_us: 0.0,
                request_id: Some(info.request.id),
                device: 0,
                tile: None,
                kind: obs::SpanKind::Reject,
            });
        }
        // No device to blame, so the shed lands in lane 0 of the telemetry
        // series; window aggregates sum across lanes either way.
        let class = state
            .session
            .as_ref()
            .map_or(SloClass::Standard, |driver| driver.slo_of(index));
        state.lane_series[0].note_reject(class, now_us);
        state.rejected.push(RejectedRequest {
            id: info.request.id,
            kernel: info.request.kernel.shared_name(),
            arrival_us: info.request.arrival_us,
            deadline_us: info.request.deadline_us,
        });
    }

    /// The session tier's reaction to a rejected stage: fail its pipeline
    /// (sealing the pipeline's fate through the reorder buffer) and shed
    /// the still-parked sibling stages the failure cascades to — each gets
    /// its own reject record so the served-or-rejected intake invariant
    /// holds stage by stage. A no-op on every non-pipeline serve.
    fn cascade_stage_reject(
        &self,
        index: usize,
        now_us: f64,
        intake: &[InFlight],
        state: &mut ClusterState<'_>,
    ) {
        let shed = match &mut state.session {
            Some(driver) => driver.note_rejected(index, now_us),
            None => return,
        };
        for sibling in shed {
            self.reject_unroutable(sibling, &intake[sibling], now_us, state);
        }
    }

    /// The stage-affinity override and activation pricing step, run after
    /// routing on a pipeline serve (identity on every other serve): when
    /// enabled and the load-driven choice differs from the producer device
    /// of the stage's heaviest input, the producer wins if the activation
    /// savings of staying put outweigh the estimated extra queueing there.
    /// Either way the final device's activation bill is priced into
    /// `activation_us[index]`, charged ahead of the context switch at
    /// start.
    fn apply_stage_affinity(
        &self,
        index: usize,
        routed: usize,
        acquisition: Acquisition,
        info: &InFlight,
        state: &mut ClusterState<'_>,
    ) -> (usize, Acquisition) {
        let ClusterState {
            session,
            exclusions,
            activation_us,
            ..
        } = state;
        let Some(driver) = session else {
            return (routed, acquisition);
        };
        let transfer = self.active_transfer();
        let alive = |device: usize| match &self.fault {
            Some(fault) => fault.alive[device],
            None => true,
        };
        let mut device = routed;
        let mut acquisition = acquisition;
        if driver.affinity {
            if let Some(target) = driver.affinity_target(index) {
                let eligible = target != routed
                    && target < self.num_devices()
                    && !exclusions[index].contains(target)
                    && match &self.fault {
                        Some(fault) => fault.available(target),
                        None => true,
                    };
                if eligible {
                    let (cost_routed, _) = driver.activation_plan(index, routed, &transfer, alive);
                    let (cost_target, _) = driver.activation_plan(index, target, &transfer, alive);
                    let savings = cost_routed - cost_target;
                    // The queueing penalty of following the data: the
                    // difference in waiting depth, scaled by this stage's
                    // estimated service time.
                    let penalty = (self.devices[target].pool.total_waiting() as f64
                        - self.devices[routed].pool.total_waiting() as f64)
                        * info.view.est_exec_us;
                    if savings > 0.0 && savings >= penalty {
                        device = target;
                        acquisition =
                            self.peek_acquisition(target, info.view.key, info.image_bytes);
                    }
                }
            }
        }
        activation_us[index] = driver.activation_plan(index, device, &transfer, alive).0;
        (device, acquisition)
    }

    /// Commits the activation bill priced by
    /// [`apply_stage_affinity`](Cluster::apply_stage_affinity) once the
    /// stage is admitted: the driver accumulates the paid transfers and a
    /// stage-transfer span is recorded per moved input. A no-op on every
    /// non-pipeline serve.
    fn commit_stage_activation(
        &self,
        index: usize,
        device: usize,
        info: &InFlight,
        now_us: f64,
        state: &mut ClusterState<'_>,
    ) {
        let ClusterState {
            session, recorder, ..
        } = state;
        let Some(driver) = session else { return };
        let transfer = self.active_transfer();
        let alive = |device: usize| match &self.fault {
            Some(fault) => fault.alive[device],
            None => true,
        };
        let (cost_us, moved) = driver.activation_plan(index, device, &transfer, alive);
        driver.commit_activation(index, cost_us, moved.len());
        if recorder.enabled() {
            for (from, bytes) in moved {
                recorder.record(obs::TraceEvent {
                    time_us: now_us,
                    dur_us: 0.0,
                    request_id: Some(info.request.id),
                    device,
                    tile: None,
                    kind: obs::SpanKind::StageTransfer { from, bytes },
                });
            }
        }
    }

    /// The stage-completion edge of the session tier: records the
    /// committing stage's producer device, and re-arrives (at the same
    /// instant) every parked successor whose inputs are now all ready —
    /// each with a stage-ready span. Seals the pipeline through the
    /// reorder buffer when this was its last stage. A no-op on every
    /// non-pipeline serve.
    fn note_stage_complete(
        &self,
        index: usize,
        device: usize,
        now_us: f64,
        intake: &[InFlight],
        state: &mut ClusterState<'_>,
    ) {
        let ClusterState {
            session,
            events,
            recorder,
            ..
        } = state;
        let Some(driver) = session else { return };
        for succ in driver.note_complete(index, device, now_us) {
            if recorder.enabled() {
                recorder.record(obs::TraceEvent {
                    time_us: now_us,
                    dur_us: 0.0,
                    request_id: Some(intake[succ].request.id),
                    device,
                    tile: None,
                    kind: obs::SpanKind::StageReady {
                        deps: driver.dep_count(succ) as u32,
                    },
                });
            }
            events.push(now_us, EventKind::Arrival { index: succ });
        }
    }

    /// Applies scheduled fault `fault_index` at `now_us`: flips the fleet
    /// flags, records the fault span, and performs the structural reaction
    /// (evacuation, requeues, index surgery, replica re-homing).
    fn apply_fault(
        &mut self,
        fault_index: usize,
        now_us: f64,
        intake: &[InFlight],
        state: &mut ClusterState<'_>,
    ) {
        let kind = self
            .fault
            .as_mut()
            .expect("fault events only fire under a fault plan")
            .apply(fault_index, now_us);
        if state.recorder.enabled() {
            let (device, span) = match kind {
                FaultKind::Kill { device } => (device, obs::SpanKind::DeviceDown),
                FaultKind::Revive { device } => (device, obs::SpanKind::DeviceUp),
                FaultKind::Drain { device } => (device, obs::SpanKind::DrainPhase { begin: true }),
                FaultKind::Undrain { device } => {
                    (device, obs::SpanKind::DrainPhase { begin: false })
                }
                FaultKind::DegradeLinks { multiplier } => {
                    (0, obs::SpanKind::LinkDegrade { multiplier })
                }
            };
            state.recorder.record(obs::TraceEvent {
                time_us: now_us,
                dur_us: 0.0,
                request_id: None,
                device,
                tile: None,
                kind: span,
            });
        }
        match kind {
            FaultKind::Kill { device } => self.kill_device(device, now_us, intake, state),
            FaultKind::Drain { device } => self.drain_cluster_device(device, now_us, intake, state),
            FaultKind::Revive { device } | FaultKind::Undrain { device } => {
                self.rejoin_device(device)
            }
            FaultKind::DegradeLinks { .. } => {} // pricing reads the flag live
        }
    }

    /// The abrupt-death reaction: the device leaves the routing index, its
    /// running request is abandoned (progress counted as lost work, outcome
    /// withdrawn, simulation restored for the retry), every queued request
    /// is displaced, tile timelines rewind, the kernel store is wiped, and
    /// the replication layer's pushed replicas re-home to survivors.
    fn kill_device(
        &mut self,
        device: usize,
        now_us: f64,
        intake: &[InFlight],
        state: &mut ClusterState<'_>,
    ) {
        self.load_index.remove(&self.devices[device].load_key());
        let base = device * self.tiles_per_device;
        for local in 0..self.tiles_per_device {
            let tile = base + local;
            if let Some(index) = state.running_index[tile].take() {
                let outcome = state.outcome_slots[index]
                    .take()
                    .expect("a running request has an outcome slot");
                let fault = self.fault.as_mut().expect("kill fires under a fault plan");
                fault.lost_work_us[device] += (now_us - outcome.start_us).max(0.0);
                state.sim.restore(index, outcome.run);
                self.displace(index, device, now_us, intake, state);
            }
            for index in state.queues[tile].drain_live(&state.taken) {
                if let Some(driver) = &mut state.session {
                    // The displaced stage leaves the queue; its session's
                    // fair-admission share frees up until the requeue
                    // re-enqueues it somewhere alive.
                    driver.note_dequeued(index);
                }
                self.displace(index, device, now_us, intake, state);
            }
            state.pending_free[tile] = None;
            state.batcher.reset_tile(tile);
        }
        self.devices[device].pool.evacuate(now_us);
        self.devices[device].busy_tiles = 0;
        self.devices[device].cache.wipe();
        self.rehome_replicas(device, now_us, state);
    }

    /// The graceful-drain reaction: the device leaves the routing index
    /// and its queued-but-not-started requests are displaced, but resident
    /// running work finishes normally and the kernel store stays warm for
    /// the undrain.
    fn drain_cluster_device(
        &mut self,
        device: usize,
        now_us: f64,
        intake: &[InFlight],
        state: &mut ClusterState<'_>,
    ) {
        self.load_index.remove(&self.devices[device].load_key());
        let base = device * self.tiles_per_device;
        for local in 0..self.tiles_per_device {
            let tile = base + local;
            for index in state.queues[tile].drain_live(&state.taken) {
                if let Some(driver) = &mut state.session {
                    // The displaced stage leaves the queue; its session's
                    // fair-admission share frees up until the requeue
                    // re-enqueues it somewhere alive.
                    driver.note_dequeued(index);
                }
                self.displace(index, device, now_us, intake, state);
            }
        }
        self.devices[device].pool.evacuate_queues();
    }

    /// A revive or undrain: the device rejoins the routing index — if it is
    /// actually serviceable (undraining a still-dead device rejoins
    /// nothing).
    fn rejoin_device(&mut self, device: usize) {
        let available = self
            .fault
            .as_ref()
            .expect("rejoin fires under a fault plan")
            .available(device);
        if available {
            self.load_index.insert(self.devices[device].load_key());
        }
    }

    /// Displacement bookkeeping shared by kill and drain: the losing
    /// device enters the request's exclusion set and a requeue event at
    /// the current instant sends it back through routing (after every
    /// same-instant fault, so a coordinated kill+revive script is seen in
    /// its final state).
    fn displace(
        &mut self,
        index: usize,
        from_device: usize,
        now_us: f64,
        intake: &[InFlight],
        state: &mut ClusterState<'_>,
    ) {
        state.exclusions[index].insert(from_device);
        self.fault
            .as_mut()
            .expect("displacement only happens under faults")
            .requeues[from_device] += 1;
        state.events.push(now_us, EventKind::Requeue { index });
        if state.recorder.enabled() {
            state.recorder.record(obs::TraceEvent {
                time_us: now_us,
                dur_us: 0.0,
                request_id: Some(intake[index].request.id),
                device: from_device,
                tile: None,
                kind: obs::SpanKind::Requeue,
            });
        }
    }

    /// Re-homes the replication layer's pushed replicas off a dead device:
    /// each orphaned image still held by a surviving store is pushed onto
    /// the least-loaded live device with a free slot that does not hold it
    /// — the same adoption path and accounting as a rate-driven push.
    fn rehome_replicas(&mut self, dead: usize, now_us: f64, state: &mut ClusterState<'_>) {
        for key in state.replicator.drain_device(dead) {
            let Some(artifact) = self
                .devices
                .iter()
                .find(|d| d.id != dead && d.cache.contains(&key))
                .and_then(|d| d.cache.peek(&key))
            else {
                continue; // no surviving holder to source the image from
            };
            let Some(target) = self.load_index.iter().map(|&(_, _, id)| id).find(|&id| {
                !self.devices[id].cache.contains(&key)
                    && self.devices[id].cache.len() < self.devices[id].cache.capacity()
            }) else {
                continue; // everyone holds it or no store has a free slot
            };
            let bytes = artifact.program.config_bytes();
            let cost_us =
                cheapest_acquisition(&self.active_transfer(), self.holders(key), target, bytes)
                    .cost_us();
            self.devices[target].cache.get_or_share(key, &artifact);
            state.replicator.note_pushed(target, key, bytes, cost_us);
            if state.recorder.enabled() {
                state.recorder.record(obs::TraceEvent {
                    time_us: now_us,
                    dur_us: 0.0,
                    request_id: None,
                    device: target,
                    tile: None,
                    kind: obs::SpanKind::Prefetch {
                        bytes: bytes as u64,
                    },
                });
                state
                    .recorder
                    .counter(now_us, target, obs::CounterName::ReplicaPushed);
            }
        }
    }

    /// The shared serve body: resets per-serve state, spins up the shared
    /// sim worker pool (and the feeder thread for streaming serves), runs
    /// the cluster event loop over `ingest` and folds the output into a
    /// report.
    fn run_serve<F>(
        &mut self,
        ingest: Ingest,
        feed: Option<(F, mpsc::SyncSender<Arc<Request>>)>,
    ) -> Result<ClusterReport, RuntimeError>
    where
        F: FnOnce(Submitter) + Send,
    {
        // A dynamically-routed, replicated or fault-injected serve can adopt
        // images into non-home stores (requeues land anywhere); remember
        // that so the sharded loop (which assumes home-only residency)
        // stays off until the stores are rebuilt.
        if self.num_devices() > 1
            && (!self.route.is_statically_sharded()
                || self.replication.enabled()
                || self.fault_plan.is_some())
        {
            self.cross_shard_images = true;
        }
        // Validate and arm the fault schedule before anything is spawned.
        // An installed-but-empty plan still builds a `FaultState`, so the
        // fault code path itself is exercised (and pinned bitwise-identical
        // to a plan-free serve by the equivalence proptests).
        self.fault = match &self.fault_plan {
            Some(plan) => Some(FaultState::new(
                plan.validated(self.num_devices())?,
                self.num_devices(),
            )),
            None => None,
        };
        for device in &mut self.devices {
            device.pool.reset();
            device.dispatcher.reset();
            device.busy_tiles = 0;
        }
        self.rebuild_load_index();
        let cache_before: Vec<CacheStats> = self.devices.iter().map(|d| d.cache.stats()).collect();
        let memo_before = self.sim_memo.stats();

        let (result_tx, result_rx) = mpsc::channel::<(usize, Result<SimRun, SimError>)>();
        let workers = self.total_tiles().clamp(1, Runtime::MAX_SIM_WORKERS);
        let variant = self.variant();
        let (job_txs, job_rxs): (Vec<_>, Vec<_>) =
            (0..workers).map(|_| mpsc::channel::<SimJob>()).unzip();

        let output = thread::scope(|scope| {
            if let Some((feed, ingest_tx)) = feed {
                scope.spawn(move || feed(Submitter::new(ingest_tx)));
            }
            for job_rx in job_rxs {
                let result_tx = result_tx.clone();
                scope.spawn(move || {
                    let simulator = OverlaySimulator::new(variant).with_trace_capacity(0);
                    while let Ok(job) = job_rx.recv() {
                        let run = simulator.run(&job.compiled, &job.request.workload);
                        if result_tx.send((job.index, run)).is_err() {
                            break; // loop is gone (it failed); stop working
                        }
                    }
                });
            }
            drop(result_tx); // workers hold the clones that matter
            self.event_loop(ingest, job_txs, &result_rx)
        })?;

        let delta = |after: CacheStats, before: CacheStats| CacheStats {
            hits: after.hits - before.hits,
            misses: after.misses - before.misses,
            evictions: after.evictions - before.evictions,
        };
        let cache_deltas: Vec<CacheStats> = self
            .devices
            .iter()
            .zip(&cache_before)
            .map(|(device, &before)| delta(device.cache.stats(), before))
            .collect();
        let sim_memo = delta(self.sim_memo.stats(), memo_before);
        let (metrics, devices) = self.aggregate(&output, &cache_deltas, sim_memo);
        Ok(ClusterReport {
            policy: self.policy(),
            route: self.route,
            replication: output.replication,
            trace: output.trace,
            profile: output.profile,
            telemetry: output.telemetry,
            slo: output.slo,
            outcomes: output.outcomes,
            rejected: output.rejected,
            metrics,
            devices,
        })
    }

    /// The cluster's discrete-event core — [`Runtime`]'s event loop with a
    /// device-routing step (and the acquisition charge) spliced between
    /// arrival and tile placement. Decision order is identical, which is
    /// what makes the 1-device cluster bitwise equivalent.
    fn event_loop(
        &mut self,
        mut ingest: Ingest,
        jobs: Vec<mpsc::Sender<SimJob>>,
        results: &mpsc::Receiver<(usize, Result<SimRun, SimError>)>,
    ) -> Result<ClusterLoopOutput, RuntimeError> {
        let mut ctx = PrepContext::for_pool(&self.devices[0].pool)?;
        let devices = self.num_devices();
        let total_tiles = self.total_tiles();
        let policy = self.policy();
        let mut intake: Vec<InFlight> = Vec::new();
        let mut state = ClusterState {
            queues: (0..total_tiles)
                .map(|_| TileQueue::new(policy, self.batching.enabled()))
                .collect(),
            taken: Vec::new(),
            events: EventQueue::new(),
            outcome_slots: Vec::new(),
            rejected: Vec::new(),
            sim: SimResults::new(results, jobs.len(), self.sim_memo.capacity() > 0),
            batcher: Batcher::new(self.batching, total_tiles),
            replicator: Replicator::new(self.replication, devices),
            peak_queue_depth: 0,
            queue_area_us: 0.0,
            last_event_us: 0.0,
            acquire_us: Vec::new(),
            device_peak_queue: vec![0; devices],
            device_rejects: vec![0; devices],
            device_transfers: vec![(0, 0); devices],
            device_host_loads: vec![0; devices],
            recorder: {
                // Reuse the drained recorder from the previous serve (warm
                // ring allocation); rebuild only if the config changed or a
                // prior error path lost it.
                let scratch = std::mem::replace(
                    &mut self.trace_scratch,
                    obs::TraceRecorder::new(obs::TraceConfig::disabled()),
                );
                if scratch.capacity() == self.tracing.capacity() {
                    scratch
                } else {
                    obs::TraceRecorder::new(self.tracing)
                }
            },
            profiler: obs::StageProfiler::new(self.profiling),
            queue_depth_hist: obs::LogHistogram::new(),
            device_latency_hists: vec![obs::LogHistogram::new(); devices],
            acquire_src: Vec::new(),
            exclusions: Vec::new(),
            running_index: vec![None; total_tiles],
            pending_free: vec![None; total_tiles],
            session: self.session_driver.take(),
            activation_us: Vec::new(),
            lane_series: (0..devices)
                .map(|_| obs::LaneSeries::new(self.telemetry))
                .collect(),
            global_series: obs::GlobalSeries::new(self.telemetry),
        };
        // Arm the fault schedule: pre-pushed at virtual time zero, the
        // fault events hold the lowest sequence numbers and therefore fire
        // ahead of arrivals and completions at the same instant.
        if let Some(fault) = &self.fault {
            for (index, event) in fault.events.iter().enumerate() {
                state
                    .events
                    .push(event.time_us, EventKind::Fault { fault: index });
            }
        }
        let mut pull = crate::SubmissionPull::new();

        loop {
            {
                let ClusterState {
                    events,
                    outcome_slots,
                    taken,
                    sim,
                    acquire_us,
                    acquire_src,
                    exclusions,
                    activation_us,
                    recorder,
                    ..
                } = &mut state;
                let device_slots = &mut self.devices;
                let lower = &self.lower;
                let reconfig = &self.reconfig;
                let fault = &self.fault;
                pull.pull(
                    &mut ingest,
                    events,
                    &mut intake,
                    |request| {
                        // The kernel's home shard is its compile authority:
                        // the artifact is built (or found) in the home
                        // device's store; other devices adopt the image
                        // when routing first sends the kernel their way.
                        // Under faults a dead home must not hold the image
                        // (its store is conceptually gone), so authority
                        // walks to the next living device — or stays put
                        // when the whole fleet is down.
                        let fingerprint = request.kernel.fingerprint();
                        let home = kernel_home(fingerprint, devices);
                        let home = match fault {
                            Some(f) => kernel_home_eligible(fingerprint, devices, |d| f.alive[d])
                                .unwrap_or(home),
                            None => home,
                        };
                        prepare_request(
                            &mut device_slots[home].cache,
                            lower,
                            reconfig,
                            &mut ctx,
                            request,
                        )
                    },
                    |inflight| {
                        outcome_slots.push(None);
                        taken.push(false);
                        sim.push_slot();
                        acquire_us.push(0.0);
                        acquire_src.push(("resident", 0));
                        exclusions.push(ExclusionSet::default());
                        activation_us.push(0.0);
                        if recorder.enabled() {
                            recorder.record(obs::TraceEvent {
                                time_us: inflight.request.arrival_us,
                                dur_us: 0.0,
                                request_id: Some(inflight.request.id),
                                device: 0,
                                tile: None,
                                kind: obs::SpanKind::Submit,
                            });
                        }
                    },
                )?;
            }
            let Some(event) = state.events.pop() else {
                debug_assert!(
                    !pull.ingest_open,
                    "event queue drained while ingest is open"
                );
                break;
            };
            let now_us = event.time_us;
            let bookkeeping = state.profiler.begin();
            let waiting = self.waiting_count();
            state.queue_area_us += waiting as f64 * (now_us - state.last_event_us);
            state.queue_depth_hist.record(waiting as f64);
            state
                .global_series
                .note_queue(state.last_event_us, now_us, waiting);
            state.last_event_us = now_us;
            state.profiler.end(obs::Stage::Bookkeeping, bookkeeping);

            match event.kind {
                EventKind::Arrival { index } => {
                    let info = &intake[index];
                    // The session tier's gate: a pipeline stage whose
                    // inputs have not all committed parks here (its last
                    // dependency's completion re-arrives it), and a stage
                    // of an already-failed pipeline is shed. Absent a
                    // session driver every arrival proceeds untouched.
                    if let Some(driver) = &mut state.session {
                        match driver.on_arrival(index) {
                            ArrivalAction::Proceed => {}
                            ArrivalAction::Park => continue,
                            ArrivalAction::Reject => {
                                self.reject_unroutable(index, info, now_us, &mut state);
                                self.cascade_stage_reject(index, now_us, &intake, &mut state);
                                continue;
                            }
                        }
                    }
                    // 0. Feed the control plane's rate estimate and push hot
                    // kernel images ahead of demand; 1. route to a device;
                    // 2. resolve how the device gets the kernel image;
                    // 3. place on a tile with the acquisition-adjusted
                    // switch cost.
                    self.replicate(info, now_us, &mut state);
                    let route = state.profiler.begin();
                    let routed = if self.fault.is_some() {
                        self.route_device_excluding(
                            info,
                            now_us,
                            &state.exclusions[index],
                            &mut state.recorder,
                        )
                    } else {
                        Some(self.route_device(info, now_us, &mut state.recorder))
                    };
                    let Some((device, acquisition)) = routed else {
                        // Every device is dead or draining: nothing can
                        // admit the arrival. Shed it like an admission
                        // reject (it is one — the cluster has no capacity).
                        state.profiler.end(obs::Stage::Route, route);
                        self.reject_unroutable(index, info, now_us, &mut state);
                        self.cascade_stage_reject(index, now_us, &intake, &mut state);
                        continue;
                    };
                    // Stage affinity may override the load-driven choice
                    // with the producer of the heaviest input, and the
                    // inter-stage activation bill for the final device is
                    // priced here (both no-ops without a session driver).
                    let (device, acquisition) =
                        self.apply_stage_affinity(index, device, acquisition, info, &mut state);
                    let adjusted = DispatchRequest {
                        switch_us: info.view.switch_us
                            + acquisition.cost_us()
                            + state.activation_us[index],
                        ..info.view
                    };
                    let routed_device = &mut self.devices[device];
                    let local_tile =
                        routed_device
                            .dispatcher
                            .place(&adjusted, now_us, &routed_device.pool);
                    state.profiler.end(obs::Stage::Route, route);
                    let tile = device * self.tiles_per_device + local_tile;
                    let starts_now = !self.devices[device].pool.states()[local_tile].running;
                    // The session tier tightens admission to the session's
                    // weighted-fair share of the limit; `fair` is always
                    // true on a plain serve, leaving the predicate
                    // untouched.
                    let fair = match &state.session {
                        Some(driver) => driver.fair_admit(index, self.admission_limit),
                        None => true,
                    };
                    let admitted =
                        starts_now || (self.waiting_count() < self.admission_limit && fair);
                    if state.recorder.enabled() {
                        state.recorder.record(obs::TraceEvent {
                            time_us: now_us,
                            dur_us: 0.0,
                            request_id: Some(info.request.id),
                            device,
                            tile: None,
                            kind: obs::SpanKind::Admission { admitted },
                        });
                        if let Some(driver) = &state.session {
                            state.recorder.record(obs::TraceEvent {
                                time_us: now_us,
                                dur_us: 0.0,
                                request_id: Some(info.request.id),
                                device,
                                tile: None,
                                kind: obs::SpanKind::SloAdmit {
                                    class: driver.slo_of(index),
                                    admitted,
                                },
                            });
                        }
                    }
                    if !admitted {
                        if state.recorder.enabled() {
                            state.recorder.record(obs::TraceEvent {
                                time_us: now_us,
                                dur_us: 0.0,
                                request_id: Some(info.request.id),
                                device,
                                tile: None,
                                kind: obs::SpanKind::Reject,
                            });
                        }
                        state.rejected.push(RejectedRequest {
                            id: info.request.id,
                            kernel: info.request.kernel.shared_name(),
                            arrival_us: info.request.arrival_us,
                            deadline_us: info.request.deadline_us,
                        });
                        state.device_rejects[device] += 1;
                        state.lane_series[device].note_reject(
                            state
                                .session
                                .as_ref()
                                .map_or(SloClass::Standard, |driver| driver.slo_of(index)),
                            now_us,
                        );
                        self.cascade_stage_reject(index, now_us, &intake, &mut state);
                        continue;
                    }
                    state.acquire_src[index] = (acquisition.label(), acquisition.bytes());
                    state.acquire_us[index] =
                        self.commit_acquisition(device, info, acquisition, &mut state);
                    self.commit_stage_activation(index, device, info, now_us, &mut state);
                    let memo = state.profiler.begin();
                    let sourced = state.sim.source(index, info, &mut self.sim_memo, &jobs);
                    state.profiler.end(obs::Stage::Memo, memo);
                    match sourced {
                        SimSourced::Joined => {
                            state
                                .recorder
                                .counter(now_us, device, obs::CounterName::MemoJoin);
                        }
                        SimSourced::MemoHit => {
                            state
                                .recorder
                                .counter(now_us, device, obs::CounterName::MemoHit);
                        }
                        SimSourced::Spawned => {}
                    }
                    if starts_now {
                        self.start_request(device, local_tile, index, &intake, &mut state, None)?;
                    } else {
                        let scan = state.profiler.begin();
                        self.with_load_update(device, |d| {
                            d.enqueue(local_tile, info.view.key, info.view.est_exec_us)
                        });
                        state.queues[tile].push(index, &info.view);
                        if let Some(driver) = &mut state.session {
                            driver.note_enqueued(index);
                        }
                        state.profiler.end(obs::Stage::Scan, scan);
                        state.peak_queue_depth = state.peak_queue_depth.max(self.waiting_count());
                        state.device_peak_queue[device] = state.device_peak_queue[device]
                            .max(self.devices[device].pool.total_waiting());
                    }
                }
                EventKind::TileFree { tile } => {
                    let device = tile / self.tiles_per_device;
                    let local_tile = tile % self.tiles_per_device;
                    if self.fault.is_some() || state.session.is_some() {
                        // A kill evacuated this tile after the completion
                        // event was scheduled: the event is a stale echo of
                        // abandoned work, and releasing on it would free a
                        // tile that is not running (or double-free one that
                        // restarted). Only the completion the tile is
                        // actually waiting on releases it. (The session
                        // tier rides the same bookkeeping to learn which
                        // stage just committed — without faults every
                        // completion matches.)
                        if state.pending_free[tile].map(f64::to_bits) != Some(now_us.to_bits()) {
                            continue;
                        }
                        state.pending_free[tile] = None;
                        if let Some(index) = state.running_index[tile].take() {
                            // The stage-completion edge: record the
                            // producer and re-arrive any successors whose
                            // inputs are now all ready.
                            self.note_stage_complete(index, device, now_us, &intake, &mut state);
                        }
                    }
                    self.with_load_update(device, |d| d.release(local_tile));
                    if !state.queues[tile].is_empty() {
                        self.start_next(device, local_tile, &intake, &mut state)?;
                    }
                }
                EventKind::Fault { fault } => {
                    self.apply_fault(fault, now_us, &intake, &mut state);
                }
                EventKind::Requeue { index } => {
                    // A displaced request re-enters routing. It was already
                    // admitted (and its simulation sourced) at its arrival,
                    // so neither is repeated; only the placement is redone,
                    // avoiding the devices it was displaced off.
                    let info = &intake[index];
                    let route = state.profiler.begin();
                    let routed = self.route_device_excluding(
                        info,
                        now_us,
                        &state.exclusions[index],
                        &mut state.recorder,
                    );
                    let Some((device, acquisition)) = routed else {
                        state.profiler.end(obs::Stage::Route, route);
                        self.reject_unroutable(index, info, now_us, &mut state);
                        self.cascade_stage_reject(index, now_us, &intake, &mut state);
                        continue;
                    };
                    // A displaced stage re-prices its activations against
                    // the new device — and against its producers' current
                    // liveness: inputs whose producer died restore from
                    // the host checkpoint instead of the link.
                    let (device, acquisition) =
                        self.apply_stage_affinity(index, device, acquisition, info, &mut state);
                    let adjusted = DispatchRequest {
                        switch_us: info.view.switch_us
                            + acquisition.cost_us()
                            + state.activation_us[index],
                        ..info.view
                    };
                    let routed_device = &mut self.devices[device];
                    let local_tile =
                        routed_device
                            .dispatcher
                            .place(&adjusted, now_us, &routed_device.pool);
                    state.profiler.end(obs::Stage::Route, route);
                    let tile = device * self.tiles_per_device + local_tile;
                    let starts_now = !self.devices[device].pool.states()[local_tile].running;
                    state.acquire_src[index] = (acquisition.label(), acquisition.bytes());
                    state.acquire_us[index] =
                        self.commit_acquisition(device, info, acquisition, &mut state);
                    self.commit_stage_activation(index, device, info, now_us, &mut state);
                    // A started-then-killed request may still carry the
                    // taken flag from its first life; clear it so the new
                    // queue entry is live.
                    state.taken[index] = false;
                    if starts_now {
                        self.start_request(device, local_tile, index, &intake, &mut state, None)?;
                    } else {
                        self.with_load_update(device, |d| {
                            d.enqueue(local_tile, info.view.key, info.view.est_exec_us)
                        });
                        state.queues[tile].push(index, &info.view);
                        if let Some(driver) = &mut state.session {
                            driver.note_enqueued(index);
                        }
                        state.peak_queue_depth = state.peak_queue_depth.max(self.waiting_count());
                        state.device_peak_queue[device] = state.device_peak_queue[device]
                            .max(self.devices[device].pool.total_waiting());
                    }
                }
            }
        }

        if intake.is_empty() {
            return Err(RuntimeError::NoRequests);
        }
        let events_fired = state.events.fired();
        let outcomes: Vec<RequestOutcome> = state.outcome_slots.into_iter().flatten().collect();
        debug_assert_eq!(
            outcomes.len() + state.rejected.len(),
            intake.len(),
            "every submitted request is either served or rejected"
        );
        let telemetry = self.telemetry.is_enabled().then(|| {
            obs::TimeSeries::assemble(
                self.telemetry,
                state.last_event_us,
                self.devices.len() * self.tiles_per_device,
                &state.global_series,
                &state.lane_series,
            )
        });
        let mut recorder = state.recorder;
        let slo = match (&telemetry, self.slo.is_enabled()) {
            (Some(series), true) => {
                let report = obs::evaluate_slo(series, &self.slo);
                obs::record_burn_spans(&mut recorder, &report);
                Some(report)
            }
            _ => None,
        };
        let trace = recorder.finish();
        // Hand the drained recorder (and its warm ring allocation) back to
        // the cluster for the next serve, and the session driver back to
        // `serve_pipelines` for the pipeline-level report.
        self.trace_scratch = recorder;
        self.session_driver = state.session.take();
        Ok(ClusterLoopOutput {
            outcomes,
            rejected: state.rejected,
            peak_queue_depth: state.peak_queue_depth,
            queue_area_us: state.queue_area_us,
            events_fired,
            batch: state.batcher.stats(),
            replication: state.replicator.stats(),
            device_peak_queue: state.device_peak_queue,
            device_rejects: state.device_rejects,
            device_transfers: state.device_transfers,
            device_host_loads: state.device_host_loads,
            trace,
            profile: state.profiler.finish(),
            queue_depth_hist: state.queue_depth_hist,
            device_latency_hists: state.device_latency_hists,
            telemetry,
            slo,
        })
    }

    /// Pulls the next queued request off a freed tile's queue and starts it
    /// (the indexed pop, exactly as `Runtime::start_next` does it —
    /// including the batching layer over the policy's choice).
    fn start_next(
        &mut self,
        device: usize,
        local_tile: usize,
        intake: &[InFlight],
        state: &mut ClusterState<'_>,
    ) -> Result<(), RuntimeError> {
        let tile = device * self.tiles_per_device + local_tile;
        let now_us = state.events.now_us();
        let scan = state.profiler.begin();
        let queue = &mut state.queues[tile];
        let resident = self.devices[device].pool.states()[local_tile].resident;
        let choice = queue.peek_next(resident, &state.taken);
        // The deadline-feasibility guard must see what the choice will
        // actually be charged: its switch *plus* the image-acquisition and
        // activation-transfer delays committed at its arrival (both always
        // 0 on one device with no session driver).
        let choice_view = DispatchRequest {
            switch_us: intake[choice].view.switch_us
                + state.acquire_us[choice]
                + state.activation_us[choice],
            ..intake[choice].view
        };
        let diverted = state.batcher.divert(
            tile,
            now_us,
            resident,
            &choice_view,
            intake[choice].request.arrival_us,
            |key| {
                queue
                    .oldest_for_kernel(key, &state.taken)
                    .map(|i| (i, intake[i].view.est_exec_us))
            },
        );
        if state.session.is_some() && diverted.is_some_and(|diverted| diverted != choice) {
            // The batching layer pulled a same-kernel sibling ahead of the
            // policy's choice during a pipeline serve — the cross-pipeline
            // stage-batching the session report surfaces.
            state.batcher.note_stage_batched();
        }
        let index = diverted.unwrap_or(choice);
        queue.take(index, &mut state.taken);
        if let Some(driver) = &mut state.session {
            driver.note_dequeued(index);
        }
        let remaining_tail = queue.tail_key(&state.taken);
        let est_us = intake[index].view.est_exec_us;
        state.profiler.end(obs::Stage::Scan, scan);
        self.start_request(
            device,
            local_tile,
            index,
            intake,
            state,
            Some((est_us, remaining_tail)),
        )
    }

    /// Commits request `index` to its routed device's tile at the current
    /// virtual time, charging acquisition + switch + execution and
    /// scheduling the tile-free event.
    fn start_request(
        &mut self,
        device: usize,
        local_tile: usize,
        index: usize,
        intake: &[InFlight],
        state: &mut ClusterState<'_>,
        from_queue: Option<(f64, Option<KernelKey>)>,
    ) -> Result<(), RuntimeError> {
        let now_us = state.events.now_us();
        let info = &intake[index];
        let sim_probe = state.profiler.begin();
        let run = state.sim.take(index, intake, &mut self.sim_memo)?;
        state.profiler.end(obs::Stage::Sim, sim_probe);
        let exec_cycles =
            run.metrics().total_cycles + self.devices[device].pool.roundtrip_cycles(local_tile);
        let exec_us = exec_cycles as f64 / info.fmax_mhz;
        // The image acquisition (inter-device transfer or host load)
        // resolved at the arrival event is charged ahead of the context
        // switch, as is the inter-stage activation transfer on a pipeline
        // serve; a request whose tile does not switch pays none of them.
        let switch_us = info.view.switch_us + state.acquire_us[index] + state.activation_us[index];
        let charged = match from_queue {
            Some((est_us, remaining_tail)) => self.with_load_update(device, |d| {
                d.start_queued(
                    local_tile,
                    est_us,
                    remaining_tail,
                    info.view.key,
                    now_us,
                    switch_us,
                    exec_us,
                )
            }),
            None => self.with_load_update(device, |d| {
                d.charge(local_tile, info.view.key, now_us, switch_us, exec_us)
            }),
        };
        state.batcher.note_start(
            device * self.tiles_per_device + local_tile,
            charged.switched,
        );
        if state.recorder.enabled() {
            let (source, bytes) = state.acquire_src[index];
            // The acquisition is only paid (and only spanned) as part of a
            // context switch — a warm tile rides the resident image free.
            let acquire = if charged.switched {
                Some((state.acquire_us[index], source, bytes))
            } else {
                None
            };
            record_request_spans(
                &mut state.recorder,
                (device, local_tile),
                info,
                &charged,
                acquire,
                state.activation_us[index],
                state
                    .batcher
                    .run_len(device * self.tiles_per_device + local_tile),
            );
        }
        state.device_latency_hists[device].record(charged.completion_us - info.request.arrival_us);
        let missed_deadline = info
            .request
            .deadline_us
            .is_some_and(|deadline| charged.completion_us > deadline);
        state.lane_series[device].note_start(
            state
                .session
                .as_ref()
                .map_or(SloClass::Standard, |driver| driver.slo_of(index)),
            charged.start_us,
            charged.completion_us,
            charged.completion_us - info.request.arrival_us,
            missed_deadline,
            charged.switched && state.acquire_src[index].0 == "transfer",
        );
        let request = &info.request;
        state.outcome_slots[index] = Some(RequestOutcome {
            request_id: request.id,
            kernel: request.kernel.shared_name(),
            device,
            tile: local_tile,
            sim: *run.metrics(),
            run,
            start_us: charged.start_us,
            queued_us: charged.start_us - request.arrival_us,
            completion_us: charged.completion_us,
            latency_us: charged.completion_us - request.arrival_us,
            switched: charged.switched,
            deadline_us: request.deadline_us,
            missed_deadline,
        });
        if self.fault.is_some() || state.session.is_some() {
            // Kills must know what to abandon, and stale completions of
            // abandoned work must be told apart from this run's. The
            // session tier reads the same bookkeeping to learn which stage
            // a tile-free event just committed.
            let tile = device * self.tiles_per_device + local_tile;
            state.running_index[tile] = Some(index);
            state.pending_free[tile] = Some(charged.completion_us);
        }
        state.events.push(
            charged.completion_us,
            EventKind::TileFree {
                tile: device * self.tiles_per_device + local_tile,
            },
        );
        Ok(())
    }

    /// Folds the loop output into cluster totals plus the per-device
    /// breakdown. Counters and sums are one pass over the outcomes in
    /// submission order (bitwise-matching `Runtime::aggregate` for one
    /// device); the cluster latency percentiles are rolled up from the
    /// per-device sorted runs through the merge path — no re-sort of the
    /// union.
    fn aggregate(
        &self,
        output: &ClusterLoopOutput,
        cache_deltas: &[CacheStats],
        sim_memo: CacheStats,
    ) -> (RuntimeMetrics, Vec<DeviceMetrics>) {
        let devices = self.num_devices();
        let outcomes = &output.outcomes;
        let requests = outcomes.len();
        let mut invocations = 0usize;
        let mut makespan_us = 0.0_f64;
        let mut latency_sum = 0.0_f64;
        let mut max_latency_us = 0.0_f64;
        let mut deadline_misses = 0usize;
        let mut deadline_requests = 0usize;
        let mut device_latencies: Vec<Vec<f64>> = vec![Vec::new(); devices];
        let mut device_latency_sum = vec![0.0_f64; devices];
        let mut device_max_latency = vec![0.0_f64; devices];
        let mut device_deadline_misses = vec![0usize; devices];
        let mut device_deadline_requests = vec![0usize; devices];
        for outcome in outcomes {
            invocations += outcome.sim.blocks;
            makespan_us = makespan_us.max(outcome.completion_us);
            latency_sum += outcome.latency_us;
            max_latency_us = max_latency_us.max(outcome.latency_us);
            deadline_misses += usize::from(outcome.missed_deadline);
            deadline_requests += usize::from(outcome.deadline_us.is_some());
            let device = outcome.device;
            device_latencies[device].push(outcome.latency_us);
            device_latency_sum[device] += outcome.latency_us;
            device_max_latency[device] = device_max_latency[device].max(outcome.latency_us);
            device_deadline_misses[device] += usize::from(outcome.missed_deadline);
            device_deadline_requests[device] += usize::from(outcome.deadline_us.is_some());
        }
        for latencies in &mut device_latencies {
            latencies.sort_by(f64::total_cmp);
        }
        let sorted_parts: Vec<&[f64]> = device_latencies.iter().map(Vec::as_slice).collect();
        let p50_latency_us = metrics::percentile_from_sorted_parts(&sorted_parts, 0.50);
        let p99_latency_us = metrics::percentile_from_sorted_parts(&sorted_parts, 0.99);
        let mean_latency_us = latency_sum / requests.max(1) as f64;
        let per_second = if makespan_us > 0.0 {
            1.0e6 / makespan_us
        } else {
            0.0
        };
        let utilization = |busy_us: f64| {
            if makespan_us > 0.0 {
                busy_us / makespan_us
            } else {
                0.0
            }
        };

        let device_metrics: Vec<DeviceMetrics> = self
            .devices
            .iter()
            .enumerate()
            .map(|(id, device)| {
                let states = device.pool.states();
                let served = device_latencies[id].len();
                let part: &[f64] = &device_latencies[id];
                DeviceMetrics {
                    device: id,
                    requests: served,
                    mean_latency_us: device_latency_sum[id] / served.max(1) as f64,
                    p50_latency_us: metrics::percentile_from_sorted_parts(&[part], 0.50),
                    p99_latency_us: metrics::percentile_from_sorted_parts(&[part], 0.99),
                    max_latency_us: device_max_latency[id],
                    switch_count: states.iter().map(|s| s.switches).sum(),
                    total_switch_us: states.iter().map(|s| s.switch_us).sum(),
                    tile_utilization: states.iter().map(|s| utilization(s.busy_us)).collect(),
                    tile_requests: states.iter().map(|s| s.served).collect(),
                    cache: cache_deltas[id],
                    deadline_misses: device_deadline_misses[id],
                    deadline_requests: device_deadline_requests[id],
                    rejects: output.device_rejects[id],
                    peak_queue_depth: output.device_peak_queue[id],
                    transfers_in: output.device_transfers[id].0,
                    transfer_bytes_in: output.device_transfers[id].1,
                    host_loads: output.device_host_loads[id],
                    availability: self
                        .fault
                        .as_ref()
                        .map_or(1.0, |f| f.availability(id, makespan_us)),
                    faults: self.fault.as_ref().map_or(0, |f| f.faults[id]),
                    requeues_out: self.fault.as_ref().map_or(0, |f| f.requeues[id]),
                    lost_work_us: self.fault.as_ref().map_or(0.0, |f| f.lost_work_us[id]),
                }
            })
            .collect();

        let all_states = || self.devices.iter().flat_map(|d| d.pool.states());
        let cache_total = cache_deltas
            .iter()
            .fold(CacheStats::default(), |acc, d| CacheStats {
                hits: acc.hits + d.hits,
                misses: acc.misses + d.misses,
                evictions: acc.evictions + d.evictions,
            });
        let totals = RuntimeMetrics {
            requests,
            invocations,
            makespan_us,
            requests_per_sec: requests as f64 * per_second,
            invocations_per_sec: invocations as f64 * per_second,
            mean_latency_us,
            p50_latency_us,
            p99_latency_us,
            max_latency_us,
            switch_count: all_states().map(|s| s.switches).sum(),
            total_switch_us: all_states().map(|s| s.switch_us).sum(),
            tile_utilization: all_states().map(|s| utilization(s.busy_us)).collect(),
            tile_requests: all_states().map(|s| s.served).collect(),
            cache: cache_total,
            sim_memo,
            events_fired: output.events_fired,
            deadline_misses,
            deadline_requests,
            batch: output.batch,
            rejects: output.rejected.len(),
            rejected_deadlines: output
                .rejected
                .iter()
                .filter(|r| r.deadline_us.is_some())
                .count(),
            peak_queue_depth: output.peak_queue_depth,
            mean_queue_depth: if makespan_us > 0.0 {
                output.queue_area_us / makespan_us
            } else {
                0.0
            },
            tile_peak_queue: all_states().map(|s| s.peak_queue_depth).collect(),
            latency_hist: obs::LogHistogram::merged(
                &output.device_latency_hists.iter().collect::<Vec<_>>(),
            ),
            queue_depth_hist: output.queue_depth_hist.clone(),
        };
        (totals, device_metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::PipelineStage;
    use crate::{KernelSpec, Request};
    use overlay_frontend::Benchmark;
    use overlay_sim::Workload;

    fn benchmark_trace(count: usize, blocks: usize) -> Vec<Request> {
        let suite = [
            Benchmark::Gradient,
            Benchmark::Chebyshev,
            Benchmark::Qspline,
            Benchmark::Poly5,
        ];
        (0..count)
            .map(|i| {
                let benchmark = suite[i % suite.len()];
                let spec = KernelSpec::from_benchmark(benchmark).unwrap();
                let inputs = benchmark.dfg().unwrap().num_inputs();
                let workload = Workload::random(inputs, blocks, 0xC105 ^ i as u64);
                Request::new(i as u64, spec, workload).at(i as f64 * 2.0)
            })
            .collect()
    }

    #[test]
    fn empty_clusters_and_pools_are_rejected() {
        assert!(matches!(
            Cluster::new(FuVariant::V4, 0, 4),
            Err(RuntimeError::EmptyCluster)
        ));
        assert!(matches!(
            Cluster::new(FuVariant::V4, 2, 0),
            Err(RuntimeError::EmptyPool)
        ));
    }

    #[test]
    fn builders_configure_every_device() {
        let cluster = Cluster::new(FuVariant::V3, 3, 2)
            .unwrap()
            .with_policy(DispatchPolicy::EarliestDeadlineFirst)
            .with_route_policy(RoutePolicy::LeastLoaded)
            .with_transfer_model(TransferModel::free())
            .with_cache_capacity(8)
            .unwrap()
            .with_admission_limit(5);
        assert_eq!(cluster.num_devices(), 3);
        assert_eq!(cluster.tiles_per_device(), 2);
        assert_eq!(cluster.total_tiles(), 6);
        assert_eq!(cluster.variant(), FuVariant::V3);
        assert_eq!(cluster.policy(), DispatchPolicy::EarliestDeadlineFirst);
        assert_eq!(cluster.route_policy(), RoutePolicy::LeastLoaded);
        assert_eq!(cluster.transfer_model(), TransferModel::free());
        assert_eq!(cluster.admission_limit(), 5);
        for (id, device) in cluster.devices().iter().enumerate() {
            assert_eq!(device.id(), id);
            assert_eq!(device.pool().num_tiles(), 2);
            assert_eq!(device.cache().capacity(), 8);
        }
    }

    #[test]
    fn kernel_hash_routing_pins_each_kernel_to_one_device() {
        let requests = benchmark_trace(24, 4);
        let mut cluster = Cluster::new(FuVariant::V4, 4, 2).unwrap();
        let report = cluster.serve(requests).unwrap();
        assert_eq!(report.route_policy(), RoutePolicy::KernelHash);
        let mut device_of: std::collections::HashMap<String, usize> =
            std::collections::HashMap::new();
        for outcome in report.outcomes() {
            let previous = device_of.insert(outcome.kernel.to_string(), outcome.device);
            if let Some(previous) = previous {
                assert_eq!(previous, outcome.device, "{} moved shards", outcome.kernel);
            }
        }
        // A sharded kernel never leaves its home, so nothing ever transfers.
        assert_eq!(report.transfers(), 0);
        assert_eq!(report.host_loads(), 0);
    }

    #[test]
    fn least_loaded_routing_spreads_a_burst_across_devices() {
        // 8 simultaneous single-kernel arrivals on 4 single-tile devices:
        // kernel-hash piles them on one device, least-loaded fans them out.
        let spec = KernelSpec::from_benchmark(Benchmark::Gradient).unwrap();
        let burst: Vec<Request> = (0..8)
            .map(|i| Request::new(i, spec.clone(), Workload::random(5, 64, i)).at(0.0))
            .collect();
        let mut hashed = Cluster::new(FuVariant::V4, 4, 1).unwrap();
        let hashed_report = hashed.serve(burst.clone()).unwrap();
        let hashed_devices: std::collections::HashSet<usize> =
            hashed_report.outcomes().iter().map(|o| o.device).collect();
        assert_eq!(hashed_devices.len(), 1, "one kernel, one shard");

        let mut balanced = Cluster::new(FuVariant::V4, 4, 1)
            .unwrap()
            .with_route_policy(RoutePolicy::LeastLoaded);
        let balanced_report = balanced.serve(burst).unwrap();
        let balanced_devices: std::collections::HashSet<usize> = balanced_report
            .outcomes()
            .iter()
            .map(|o| o.device)
            .collect();
        assert_eq!(balanced_devices.len(), 4, "burst fans out over all devices");
        // Spreading a kernel off its home shard moves its image.
        assert_eq!(
            balanced_report.transfers() + balanced_report.host_loads(),
            3,
            "three devices acquired the image"
        );
        assert!(
            balanced_report.metrics().makespan_us < hashed_report.metrics().makespan_us,
            "balancing the burst must finish earlier"
        );
    }

    #[test]
    fn transfers_beat_host_loads_when_the_link_is_cheaper() {
        // Same spread-out burst, but with a free host path: no transfers.
        let spec = KernelSpec::from_benchmark(Benchmark::Gradient).unwrap();
        let burst: Vec<Request> = (0..8)
            .map(|i| Request::new(i, spec.clone(), Workload::random(5, 4, i)).at(0.0))
            .collect();
        let mut linked = Cluster::new(FuVariant::V4, 4, 1)
            .unwrap()
            .with_route_policy(RoutePolicy::LeastLoaded);
        let linked_report = linked.serve(burst.clone()).unwrap();
        assert!(linked_report.transfers() > 0, "default link beats the host");
        assert!(linked_report.transfer_bytes() > 0);

        let mut hosted = Cluster::new(FuVariant::V4, 4, 1)
            .unwrap()
            .with_route_policy(RoutePolicy::LeastLoaded)
            .with_transfer_model(TransferModel {
                host_latency_us: 0.0,
                host_us_per_byte: 0.0,
                ..TransferModel::new()
            });
        let hosted_report = hosted.serve(burst).unwrap();
        assert_eq!(hosted_report.transfers(), 0, "free host loads win");
        assert_eq!(hosted_report.host_loads(), 3);
    }

    #[test]
    fn per_device_metrics_roll_up_to_the_cluster_totals() {
        let requests = benchmark_trace(32, 4);
        let mut cluster = Cluster::new(FuVariant::V4, 3, 2)
            .unwrap()
            .with_route_policy(RoutePolicy::PowerOfTwoChoices);
        let report = cluster.serve(requests).unwrap();
        let totals = report.metrics();
        let devices = report.device_metrics();
        assert_eq!(devices.len(), 3);
        assert_eq!(
            devices.iter().map(|d| d.requests).sum::<usize>(),
            totals.requests
        );
        assert_eq!(
            devices.iter().map(|d| d.switch_count).sum::<usize>(),
            totals.switch_count
        );
        assert_eq!(
            devices
                .iter()
                .map(|d| d.cache.hits + d.cache.misses)
                .sum::<usize>(),
            totals.cache.hits + totals.cache.misses
        );
        let flattened: Vec<usize> = devices
            .iter()
            .flat_map(|d| d.tile_requests.iter().copied())
            .collect();
        assert_eq!(flattened, totals.tile_requests);
        for device in devices {
            assert!(device.p50_latency_us <= device.p99_latency_us);
            assert!(device.p99_latency_us <= device.max_latency_us);
            assert!(device.max_latency_us <= totals.max_latency_us);
            assert!(device.peak_queue_depth <= totals.peak_queue_depth);
        }
        // The merged cluster percentiles bracket the per-device extremes.
        assert!(totals.p99_latency_us <= totals.max_latency_us);
    }

    /// Acquisition rules are uniform under store eviction: a device whose
    /// capacity-1 store thrashes between kernels pays to re-acquire evicted
    /// images (home shard included), while a 1-device cluster under the
    /// same eviction pressure still never acquires — it must stay bitwise
    /// `Runtime`-equivalent.
    #[test]
    fn tiny_stores_reacquire_evicted_images_and_one_device_stays_exempt() {
        let trace = benchmark_trace(16, 4);
        let mut thrashing = Cluster::new(FuVariant::V4, 2, 1)
            .unwrap()
            .with_route_policy(RoutePolicy::LeastLoaded)
            .with_cache_capacity(1)
            .unwrap();
        let report = thrashing.serve(trace.clone()).unwrap();
        assert_eq!(report.outcomes().len(), 16);
        assert!(
            report.transfers() + report.host_loads() > 2,
            "4 kernels through capacity-1 stores must keep re-acquiring, got {} + {}",
            report.transfers(),
            report.host_loads()
        );

        let mut single = Cluster::new(FuVariant::V4, 1, 2)
            .unwrap()
            .with_cache_capacity(1)
            .unwrap();
        let mut runtime = Runtime::new(FuVariant::V4, 2)
            .unwrap()
            .with_cache_capacity(1)
            .unwrap();
        let cluster_report = single.serve(trace.clone()).unwrap();
        let runtime_report = runtime.serve(trace).unwrap();
        assert_eq!(cluster_report.transfers(), 0);
        assert_eq!(cluster_report.host_loads(), 0);
        assert_eq!(cluster_report.metrics(), runtime_report.metrics());
    }

    #[test]
    fn cluster_admission_limit_is_cluster_wide() {
        let spec = KernelSpec::from_benchmark(Benchmark::Gradient).unwrap();
        let burst: Vec<Request> = (0..12)
            .map(|i| Request::new(i, spec.clone(), Workload::random(5, 4, i)).at(0.0))
            .collect();
        let mut cluster = Cluster::new(FuVariant::V4, 2, 1)
            .unwrap()
            .with_route_policy(RoutePolicy::LeastLoaded)
            .with_admission_limit(2);
        let report = cluster.serve(burst).unwrap();
        // 2 start immediately (one per device), 2 wait, the rest shed.
        assert_eq!(report.outcomes().len(), 4);
        assert_eq!(report.metrics().rejects, 8);
        assert_eq!(
            report
                .device_metrics()
                .iter()
                .map(|d| d.rejects)
                .sum::<usize>(),
            8
        );
    }

    #[test]
    fn streamed_and_batch_cluster_serves_agree() {
        // Two *fresh* clusters: acquisition decisions depend on the kernel
        // stores, which persist across serves on one cluster.
        let requests = benchmark_trace(12, 4);
        let cluster = || {
            Cluster::new(FuVariant::V4, 2, 2)
                .unwrap()
                .with_route_policy(RoutePolicy::PowerOfTwoChoices)
        };
        let batch = cluster().serve(requests.clone()).unwrap();
        let streamed = cluster()
            .serve_stream(|submitter| {
                for request in &requests {
                    submitter.submit(request.clone()).unwrap();
                }
            })
            .unwrap();
        assert_eq!(batch.outcomes().len(), streamed.outcomes().len());
        for (lhs, rhs) in batch.outcomes().iter().zip(streamed.outcomes()) {
            assert_eq!(lhs.request_id, rhs.request_id);
            assert_eq!(lhs.device, rhs.device);
            assert_eq!(lhs.tile, rhs.tile);
            assert_eq!(lhs.completion_us, rhs.completion_us);
        }
        assert_eq!(batch.metrics(), streamed.metrics());
    }

    #[test]
    fn invalid_cluster_traces_are_rejected() {
        let mut cluster = Cluster::new(FuVariant::V4, 2, 1).unwrap();
        assert!(matches!(
            cluster.serve(Vec::new()),
            Err(RuntimeError::NoRequests)
        ));
        let spec = KernelSpec::from_benchmark(Benchmark::Gradient).unwrap();
        let first = Request::new(0, spec.clone(), Workload::ramp(5, 2)).at(10.0);
        let stale = Request::new(1, spec, Workload::ramp(5, 2)).at(5.0);
        assert!(matches!(
            cluster.serve(vec![first, stale]),
            Err(RuntimeError::OutOfOrderArrival { request: 1, .. })
        ));
    }

    fn benchmark_chain(id: u64, session: u64, stages: usize, arrival_us: f64) -> PipelineRequest {
        let suite = [
            Benchmark::Gradient,
            Benchmark::Chebyshev,
            Benchmark::Qspline,
            Benchmark::Poly5,
        ];
        PipelineRequest::chain(
            id,
            session,
            (0..stages).map(|stage| {
                let benchmark = suite[stage % suite.len()];
                let spec = KernelSpec::from_benchmark(benchmark).unwrap();
                let inputs = benchmark.dfg().unwrap().num_inputs();
                (spec, Workload::random(inputs, 4, id ^ stage as u64))
            }),
        )
        .at(arrival_us)
    }

    #[test]
    fn pipeline_stages_run_in_dependency_order_with_activation_transfers() {
        let mut cluster = Cluster::new(FuVariant::V4, 4, 2)
            .unwrap()
            .with_route_policy(RoutePolicy::PowerOfTwoChoices);
        let pipelines: Vec<PipelineRequest> = (0..6)
            .map(|i| benchmark_chain(i, i % 2, 3, i as f64 * 5.0))
            .collect();
        let sessions = [Session::new(0), Session::new(1).with_slo(SloClass::Latency)];
        let report = cluster.serve_pipelines(pipelines, &sessions).unwrap();
        assert_eq!(report.pipelines.len(), 6);
        assert_eq!(report.completed(), 6);
        // Every stage is one cluster outcome: 6 pipelines × 3 stages.
        assert_eq!(report.cluster.outcomes().len(), 18);
        // Dependency order: each stage of a chain starts no earlier than
        // its predecessor's completion.
        for pipeline in &report.pipelines {
            let by_stage: Vec<&RequestOutcome> = (0..pipeline.stages)
                .map(|stage| {
                    let id = (pipeline.id << 16) | stage as u64;
                    report
                        .cluster
                        .outcomes()
                        .iter()
                        .find(|o| o.request_id == id)
                        .expect("every stage has an outcome")
                })
                .collect();
            for pair in by_stage.windows(2) {
                assert!(
                    pair[1].start_us >= pair[0].completion_us,
                    "a stage started before its input committed"
                );
            }
            assert_eq!(pipeline.finish_us, by_stage[2].completion_us);
            assert!(pipeline.commit_us >= pipeline.finish_us);
        }
        // Depth buckets 0..=2 and both SLO classes are reported.
        assert_eq!(report.stages.len(), 3);
        assert!(report.stages.iter().all(|s| s.served == 6));
        assert!(report.class(SloClass::Latency).is_some());
        assert!(report.class(SloClass::Standard).is_some());
    }

    #[test]
    fn stage_affinity_cuts_activation_transfers() {
        // Heavy activations under kernel-hash routing: blind routing sends
        // each stage to its kernel's home device (a transfer on almost
        // every edge), affinity keeps consumers on their producers.
        let serve = |affinity: bool| {
            let mut cluster = Cluster::new(FuVariant::V4, 4, 1)
                .unwrap()
                .with_route_policy(RoutePolicy::KernelHash)
                .with_stage_affinity(affinity);
            let pipelines: Vec<PipelineRequest> = (0..8)
                .map(|i| {
                    let mut pipeline = benchmark_chain(i, i, 3, i as f64 * 2.0);
                    for stage in &mut pipeline.stages {
                        stage.output_bytes = 1 << 20;
                    }
                    pipeline
                })
                .collect();
            let sessions: Vec<Session> = (0..8).map(Session::new).collect();
            cluster.serve_pipelines(pipelines, &sessions).unwrap()
        };
        let blind = serve(false);
        let affine = serve(true);
        assert_eq!(blind.completed(), 8);
        assert_eq!(affine.completed(), 8);
        assert!(
            affine.activation_transfers() < blind.activation_transfers(),
            "affinity {} should beat blind {}",
            affine.activation_transfers(),
            blind.activation_transfers()
        );
    }

    #[test]
    fn single_stage_standard_pipelines_match_the_plain_serve_bitwise() {
        let requests = benchmark_trace(12, 4);
        let pipelines: Vec<PipelineRequest> = requests
            .iter()
            .map(|request| {
                PipelineRequest::new(request.id, request.id % 3)
                    .at(request.arrival_us)
                    .stage(PipelineStage::new(
                        request.kernel.clone(),
                        request.workload.clone(),
                    ))
            })
            .collect();
        let sessions: Vec<Session> = (0..3).map(Session::new).collect();
        let mut plain = Cluster::new(FuVariant::V4, 2, 2).unwrap();
        let mut piped = Cluster::new(FuVariant::V4, 2, 2).unwrap();
        let plain_report = plain.serve(requests).unwrap();
        let piped_report = piped.serve_pipelines(pipelines, &sessions).unwrap();
        assert_eq!(
            plain_report.outcomes().len(),
            piped_report.cluster.outcomes().len()
        );
        for (lhs, rhs) in plain_report
            .outcomes()
            .iter()
            .zip(piped_report.cluster.outcomes())
        {
            assert_eq!(lhs.request_id, rhs.request_id);
            assert_eq!(lhs.device, rhs.device);
            assert_eq!(lhs.tile, rhs.tile);
            assert_eq!(lhs.start_us.to_bits(), rhs.start_us.to_bits());
            assert_eq!(lhs.completion_us.to_bits(), rhs.completion_us.to_bits());
        }
        assert_eq!(plain_report.metrics(), piped_report.cluster.metrics());
    }

    #[test]
    fn weighted_fair_admission_shields_the_latency_tier() {
        // A saturating burst: one single-tile device, admission limit 6.
        // Best-effort floods, latency trickles. Weighted-fair shares keep
        // queue slots for the latency session that a plain FIFO limit
        // would let the flood consume.
        let spec = KernelSpec::from_benchmark(Benchmark::Gradient).unwrap();
        let mut pipelines = Vec::new();
        for i in 0..12u64 {
            pipelines.push(
                PipelineRequest::new(i, 9)
                    .at(0.0)
                    .stage(PipelineStage::new(spec.clone(), Workload::random(5, 64, i)))
                    .with_deadline(1e9),
            );
        }
        for i in 12..16u64 {
            pipelines.push(
                PipelineRequest::new(i, 7)
                    .at(1.0)
                    .stage(PipelineStage::new(spec.clone(), Workload::random(5, 64, i)))
                    .with_deadline(1e9),
            );
        }
        let sessions = [
            Session::new(9).with_slo(SloClass::BestEffort),
            Session::new(7).with_slo(SloClass::Latency),
        ];
        let mut cluster = Cluster::new(FuVariant::V4, 1, 1)
            .unwrap()
            .with_admission_limit(6);
        let report = cluster.serve_pipelines(pipelines, &sessions).unwrap();
        let latency = report.class(SloClass::Latency).unwrap();
        let best_effort = report.class(SloClass::BestEffort).unwrap();
        // Weighted shares of 6 over total weight 5: latency 4, best 1 —
        // the flood cannot take the whole queue.
        assert_eq!(latency.pipelines, 4);
        assert!(
            latency.rejected < best_effort.rejected,
            "latency tier ({} rejects) should shed less than best-effort ({})",
            latency.rejected,
            best_effort.rejected
        );
        assert!(best_effort.rejected > 0, "the flood must actually shed");
    }

    #[test]
    fn a_mid_serve_kill_requeues_stages_without_losing_finished_work() {
        let pipelines: Vec<PipelineRequest> = (0..6)
            .map(|i| benchmark_chain(i, i, 3, i as f64 * 10.0))
            .collect();
        let sessions: Vec<Session> = (0..6).map(Session::new).collect();
        let mut cluster = Cluster::new(FuVariant::V4, 3, 1)
            .unwrap()
            .with_route_policy(RoutePolicy::LeastLoaded)
            .with_fault_plan(FaultPlan::new().kill(40.0, 1));
        let report = cluster.serve_pipelines(pipelines, &sessions).unwrap();
        // The kill displaces resident stages but never un-completes
        // upstream ones: every pipeline still runs all stages.
        assert_eq!(report.completed(), 6);
        for pipeline in &report.pipelines {
            assert_eq!(pipeline.completed_stages, 3);
            assert!(!pipeline.rejected);
        }
        assert_eq!(report.cluster.outcomes().len(), 18);
        // Nothing lands on the dead device after the kill.
        for outcome in report.cluster.outcomes() {
            if outcome.start_us >= 40.0 {
                assert_ne!(outcome.device, 1, "a stage started on the dead device");
            }
        }
    }

    #[test]
    fn invalid_pipelines_are_rejected_before_serving() {
        let mut cluster = Cluster::new(FuVariant::V4, 2, 1).unwrap();
        assert!(matches!(
            cluster.serve_pipelines(Vec::new(), &[]),
            Err(RuntimeError::NoRequests)
        ));
        let spec = KernelSpec::from_benchmark(Benchmark::Gradient).unwrap();
        let cyclic = PipelineRequest::new(3, 0)
            .stage(PipelineStage::new(spec.clone(), Workload::ramp(5, 2)).after(&[1]))
            .stage(PipelineStage::new(spec, Workload::ramp(5, 2)).after(&[0]));
        assert!(matches!(
            cluster.serve_pipelines(vec![cyclic], &[]),
            Err(RuntimeError::InvalidPipeline { pipeline: 3, .. })
        ));
    }
}
