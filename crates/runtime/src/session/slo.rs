//! Tenant sessions and their service-level-objective classes.
//!
//! A [`Session`] is the unit of tenancy the cluster arbitrates between: every
//! [`PipelineRequest`](crate::session::PipelineRequest) names the session it
//! belongs to, and the session's [`SloClass`] decides how its stages compete
//! for queue space and dispatch order:
//!
//! * **admission weighting** — when an admission limit is configured, queue
//!   capacity is shared weighted-fair across the sessions in the batch
//!   ([`SloClass::weight`]: latency 4, standard 2, best-effort 1), so one hot
//!   best-effort tenant cannot starve a latency-tier tenant out of the queue;
//! * **dispatch bias** — under the deadline-aware policies, best-effort
//!   stages are dispatched as if deadline-free (they drain after every
//!   deadline-carrying request, FIFO among themselves), while their outcomes
//!   are still *reported* against the original deadline.
//!
//! A batch whose sessions are all [`SloClass::Standard`] engages none of
//! this — the serve is bitwise identical to one with no session tier at all.

use std::fmt;

/// The latency tier a session is served under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SloClass {
    /// Interactive tier: largest weighted-fair admission share.
    Latency,
    /// The default tier; a batch of all-standard sessions is served
    /// identically to one with no SLO machinery at all.
    #[default]
    Standard,
    /// Throughput tier: smallest admission share, and dispatched as
    /// deadline-free under deadline-aware policies — best-effort absorbs the
    /// shed load when the fleet saturates.
    BestEffort,
}

impl SloClass {
    /// Every class, in tier order.
    pub const ALL: [SloClass; 3] = [SloClass::Latency, SloClass::Standard, SloClass::BestEffort];

    /// The weighted-fair admission weight (latency 4, standard 2,
    /// best-effort 1).
    pub fn weight(self) -> u64 {
        match self {
            SloClass::Latency => 4,
            SloClass::Standard => 2,
            SloClass::BestEffort => 1,
        }
    }

    /// Index into per-class metric arrays.
    pub fn index(self) -> usize {
        match self {
            SloClass::Latency => 0,
            SloClass::Standard => 1,
            SloClass::BestEffort => 2,
        }
    }

    /// A short stable label for traces and reports.
    pub fn label(self) -> &'static str {
        match self {
            SloClass::Latency => "latency",
            SloClass::Standard => "standard",
            SloClass::BestEffort => "best-effort",
        }
    }
}

impl fmt::Display for SloClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One tenant session: an id plus the SLO class its pipelines are served
/// under. Pipelines reference sessions by id; a pipeline naming an undeclared
/// session is served as [`SloClass::Standard`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Session {
    /// Caller-chosen session identifier.
    pub id: u64,
    /// The latency tier this session's pipelines are served under.
    pub slo: SloClass,
}

impl Session {
    /// A standard-class session.
    pub fn new(id: u64) -> Self {
        Session {
            id,
            slo: SloClass::default(),
        }
    }

    /// Sets the SLO class.
    #[must_use]
    pub fn with_slo(mut self, slo: SloClass) -> Self {
        self.slo = slo;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_rank_latency_over_standard_over_best_effort() {
        assert!(SloClass::Latency.weight() > SloClass::Standard.weight());
        assert!(SloClass::Standard.weight() > SloClass::BestEffort.weight());
        assert_eq!(SloClass::default(), SloClass::Standard);
        let labels: Vec<&str> = SloClass::ALL.iter().map(|class| class.label()).collect();
        assert_eq!(labels, vec!["latency", "standard", "best-effort"]);
        let indices: Vec<usize> = SloClass::ALL.iter().map(|class| class.index()).collect();
        assert_eq!(indices, vec![0, 1, 2]);
        assert_eq!(SloClass::BestEffort.to_string(), "best-effort");
    }

    #[test]
    fn sessions_default_to_standard() {
        let session = Session::new(3);
        assert_eq!(session.slo, SloClass::Standard);
        assert_eq!(
            Session::new(3).with_slo(SloClass::Latency).slo,
            SloClass::Latency
        );
    }
}
