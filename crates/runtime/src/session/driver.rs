//! The cluster-side session driver: host state steering a pipeline serve
//! through the cluster event loop.
//!
//! The event loop stays a flat request machine — every stage of every
//! pipeline is one intake entry — and this driver supplies the session-tier
//! edges around it:
//!
//! * **parking** — a stage whose inputs have not all committed holds off the
//!   routing/admission path; the completion of its last dependency releases
//!   it back as a same-instant arrival event;
//! * **activation pricing** — when consecutive stages land on different
//!   devices, the producer's output bytes ride the
//!   [`TransferModel`](crate::TransferModel) link (or the host checkpoint
//!   path when the producer device has died) and the cost is charged ahead
//!   of the consumer's context switch;
//! * **stage affinity** — routing may override its load-driven choice with
//!   the producer device of the heaviest input when the activation savings
//!   beat the queueing penalty;
//! * **weighted-fair admission** — under an admission limit, each session's
//!   waiting stages are capped at its [`SloClass`]-weighted share
//!   ([`fair_share`]);
//! * **in-order commit** — pipeline outcomes retire through a per-session
//!   [`ReorderBuffer`].
//!
//! Crucially, the driver's view of *completed* stages lives here, on the
//! host side of the simulation: a device kill displaces the stages resident
//! on it, but never un-completes the upstream stages whose outputs already
//! committed — their activations restore from the host checkpoint when the
//! producer device is gone.

use std::collections::BTreeMap;

use crate::metrics::{ClassMetrics, StageMetrics};
use crate::request::Request;
use crate::route::TransferModel;
use crate::session::dag::PipelineRequest;
use crate::session::sched::{fair_share, ReorderBuffer};
use crate::session::slo::SloClass;
use crate::session::PipelineOutcome;

/// What the arrival handler should do with a stage whose event just fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ArrivalAction {
    /// Inputs ready (or a root stage): route, admit and place as usual.
    Proceed,
    /// A dependency has not committed yet: hold the stage off the routing
    /// and admission path until its last dependency releases it.
    Park,
    /// The owning pipeline already failed: shed the stage.
    Reject,
}

/// Per-stage driver state, indexed by intake index.
#[derive(Debug)]
struct StageState {
    /// The owning pipeline (index into `SessionDriver::pipes`).
    pipeline: usize,
    /// Longest-path depth from the pipeline's roots (0 for roots) — the
    /// bucket [`StageMetrics`] aggregates by.
    depth: usize,
    /// Intake indices of the stages whose outputs this stage consumes.
    deps: Vec<usize>,
    /// Intake indices of the stages consuming this stage's output.
    succs: Vec<usize>,
    /// Dependencies that have not completed yet.
    deps_left: usize,
    /// Activation bytes this stage emits to each consumer.
    output_bytes: u64,
    parked: bool,
    done: bool,
    rejected: bool,
    /// The device the stage completed on (its successors' activation
    /// source). Survives that device's later death — the output is
    /// checkpointed host-side.
    producer: Option<usize>,
    /// When the stage became runnable: its arrival for roots, the last
    /// dependency's completion otherwise.
    ready_us: f64,
    completion_us: f64,
    /// Activation transfers actually paid, accumulated across fault
    /// requeues (a displaced stage re-prices on its new device).
    paid_transfers: usize,
    paid_transfer_us: f64,
}

/// Per-pipeline driver state.
#[derive(Debug)]
struct PipeState {
    id: u64,
    session: u64,
    slo: SloClass,
    arrival_us: f64,
    deadline_us: Option<f64>,
    /// Intake indices of the pipeline's stages, in topological order.
    stages: Vec<usize>,
    /// Stages not yet completed.
    remaining: usize,
    completed_stages: usize,
    /// A stage was rejected; the pipeline's fate is sealed as failed.
    failed: bool,
    /// The pipeline's finish was pushed into the reorder buffer.
    sealed: bool,
    finish_us: f64,
    commit_us: f64,
}

/// The session tier's event-loop companion (see the module docs). Built by
/// [`Cluster::serve_pipelines`](crate::Cluster::serve_pipelines) for the
/// multi-stage / non-default-class path and threaded through the loop's
/// `ClusterState`; absent (`None`) on every other serve, which keeps the
/// plain paths bitwise identical.
#[derive(Debug)]
pub(crate) struct SessionDriver {
    /// Whether routing may override its choice with the producer device of
    /// the heaviest input ([`Cluster::with_stage_affinity`]).
    ///
    /// [`Cluster::with_stage_affinity`]: crate::Cluster::with_stage_affinity
    pub(crate) affinity: bool,
    stages: Vec<StageState>,
    pipes: Vec<PipeState>,
    rob: ReorderBuffer,
    /// Admission weight per session id (fixed by its [`SloClass`]).
    weights: BTreeMap<u64, u64>,
    total_weight: u64,
    /// Stages currently waiting in tile queues, per session — what the
    /// weighted-fair admission share bounds.
    waiting: BTreeMap<u64, usize>,
}

impl SessionDriver {
    /// Flattens validated pipelines into the intake request list (stages in
    /// per-pipeline topological order, all at the pipeline's arrival) and
    /// builds the driver state over the resulting intake indices.
    ///
    /// The dispatch bias half of the SLO tier happens here: only sink
    /// stages of non-best-effort pipelines carry the pipeline deadline into
    /// their [`Request`], so deadline-aware dispatch policies prioritize
    /// latency/standard sinks while best-effort pipelines are judged on
    /// their commit time alone.
    pub(crate) fn build(
        pipelines: &[PipelineRequest],
        topos: &[Vec<usize>],
        slo_of: &BTreeMap<u64, SloClass>,
        affinity: bool,
    ) -> (Self, Vec<Request>) {
        let mut requests = Vec::new();
        let mut stages: Vec<StageState> = Vec::new();
        let mut pipes: Vec<PipeState> = Vec::with_capacity(pipelines.len());
        let mut rob = ReorderBuffer::new(pipelines.len());
        let mut weights: BTreeMap<u64, u64> = BTreeMap::new();
        for (pipe_index, (pipeline, topo)) in pipelines.iter().zip(topos).enumerate() {
            let slo = slo_of.get(&pipeline.session).copied().unwrap_or_default();
            weights
                .entry(pipeline.session)
                .or_insert_with(|| slo.weight());
            rob.push(pipeline.session, pipe_index);
            let sinks = pipeline.sinks();
            let mut intake_of = vec![usize::MAX; pipeline.stages.len()];
            let mut pipe_stages = Vec::with_capacity(topo.len());
            for &s in topo {
                let stage = &pipeline.stages[s];
                let index = requests.len();
                intake_of[s] = index;
                let mut request = Request::new(
                    pipeline.stage_request_id(s),
                    stage.kernel.clone(),
                    stage.workload.clone(),
                )
                .at(pipeline.arrival_us);
                if sinks.contains(&s) && slo != SloClass::BestEffort {
                    if let Some(deadline) = pipeline.deadline_us {
                        request = request.with_deadline(deadline);
                    }
                }
                requests.push(request);
                // Topological order guarantees every dependency's intake
                // index is already assigned.
                let deps: Vec<usize> = stage.deps.iter().map(|&dep| intake_of[dep]).collect();
                let depth = deps
                    .iter()
                    .map(|&dep| stages[dep].depth + 1)
                    .max()
                    .unwrap_or(0);
                let deps_left = deps.len();
                stages.push(StageState {
                    pipeline: pipe_index,
                    depth,
                    deps,
                    succs: Vec::new(),
                    deps_left,
                    output_bytes: stage.output_bytes,
                    parked: false,
                    done: false,
                    rejected: false,
                    producer: None,
                    ready_us: pipeline.arrival_us,
                    completion_us: 0.0,
                    paid_transfers: 0,
                    paid_transfer_us: 0.0,
                });
                pipe_stages.push(index);
            }
            for &index in &pipe_stages {
                for dep_position in 0..stages[index].deps.len() {
                    let dep = stages[index].deps[dep_position];
                    stages[dep].succs.push(index);
                }
            }
            pipes.push(PipeState {
                id: pipeline.id,
                session: pipeline.session,
                slo,
                arrival_us: pipeline.arrival_us,
                deadline_us: pipeline.deadline_us,
                stages: pipe_stages,
                remaining: topo.len(),
                completed_stages: 0,
                failed: false,
                sealed: false,
                finish_us: pipeline.arrival_us,
                commit_us: pipeline.arrival_us,
            });
        }
        let total_weight = weights.values().sum();
        (
            SessionDriver {
                affinity,
                stages,
                pipes,
                rob,
                weights,
                total_weight,
                waiting: BTreeMap::new(),
            },
            requests,
        )
    }

    /// The session-tier gate at a stage's arrival event (see
    /// [`ArrivalAction`]). A parked stage is released by
    /// [`note_complete`](Self::note_complete) when its last dependency
    /// commits.
    pub(crate) fn on_arrival(&mut self, index: usize) -> ArrivalAction {
        let pipeline = self.stages[index].pipeline;
        if self.pipes[pipeline].failed {
            return ArrivalAction::Reject;
        }
        let stage = &mut self.stages[index];
        if stage.deps_left > 0 {
            stage.parked = true;
            return ArrivalAction::Park;
        }
        ArrivalAction::Proceed
    }

    /// The stage's SLO class (its pipeline's session's class).
    pub(crate) fn slo_of(&self, index: usize) -> SloClass {
        self.pipes[self.stages[index].pipeline].slo
    }

    /// How many inputs the stage consumes (the stage-ready span payload).
    pub(crate) fn dep_count(&self, index: usize) -> usize {
        self.stages[index].deps.len()
    }

    /// Weighted-fair admission: whether the stage's session still has room
    /// inside its [`fair_share`] of the cluster admission limit. Always
    /// true without a limit.
    pub(crate) fn fair_admit(&self, index: usize, limit: usize) -> bool {
        let session = self.pipes[self.stages[index].pipeline].session;
        let weight = self.weights.get(&session).copied().unwrap_or(1);
        let share = fair_share(limit, weight, self.total_weight);
        self.waiting.get(&session).copied().unwrap_or(0) < share
    }

    /// A stage entered a tile queue.
    pub(crate) fn note_enqueued(&mut self, index: usize) {
        let session = self.pipes[self.stages[index].pipeline].session;
        *self.waiting.entry(session).or_insert(0) += 1;
    }

    /// A stage left a tile queue (started, or drained off a faulted
    /// device).
    pub(crate) fn note_dequeued(&mut self, index: usize) {
        let session = self.pipes[self.stages[index].pipeline].session;
        if let Some(count) = self.waiting.get_mut(&session) {
            *count = count.saturating_sub(1);
        }
    }

    /// The stage-affinity candidate: the producer device of the completed
    /// input with the most activation bytes (ties toward the lower device
    /// id). `None` for root stages.
    pub(crate) fn affinity_target(&self, index: usize) -> Option<usize> {
        self.stages[index]
            .deps
            .iter()
            .filter_map(|&dep| {
                let source = &self.stages[dep];
                source
                    .producer
                    .map(|device| (source.output_bytes, std::cmp::Reverse(device)))
            })
            .max()
            .map(|(_, std::cmp::Reverse(device))| device)
    }

    /// The activation bill for serving stage `index` on `device`: the total
    /// modeled delay plus the `(producer, bytes)` inputs that actually move
    /// (priced on the link from a living producer, on the host checkpoint
    /// path from a dead one — a `cheapest_acquisition`-style costing for
    /// activations, except the source is fixed by the dataflow).
    pub(crate) fn activation_plan(
        &self,
        index: usize,
        device: usize,
        transfer: &TransferModel,
        alive: impl Fn(usize) -> bool,
    ) -> (f64, Vec<(usize, u64)>) {
        let mut total_us = 0.0;
        let mut moved = Vec::new();
        for &dep in &self.stages[index].deps {
            let source = &self.stages[dep];
            let Some(producer) = source.producer else {
                continue;
            };
            if producer == device || source.output_bytes == 0 {
                continue;
            }
            let bytes = source.output_bytes;
            let cost = if alive(producer) {
                transfer.link_transfer_us(producer.abs_diff(device), bytes as usize)
            } else {
                transfer.host_load_us(bytes as usize)
            };
            total_us += cost;
            moved.push((producer, bytes));
        }
        (total_us, moved)
    }

    /// Records an activation bill actually charged (called once per routing
    /// commit; a fault requeue re-prices and re-commits).
    pub(crate) fn commit_activation(&mut self, index: usize, cost_us: f64, transfers: usize) {
        let stage = &mut self.stages[index];
        stage.paid_transfers += transfers;
        stage.paid_transfer_us += cost_us;
    }

    /// A stage completed on `device` at `now_us`: records the producer,
    /// decrements successors, seals the pipeline when it was the last
    /// stage, and returns the parked successors this completion released
    /// (the caller re-arrives them at the same instant).
    pub(crate) fn note_complete(&mut self, index: usize, device: usize, now_us: f64) -> Vec<usize> {
        let (pipeline, succs) = {
            let stage = &mut self.stages[index];
            debug_assert!(!stage.done, "a stage completes at most once");
            stage.done = true;
            stage.producer = Some(device);
            stage.completion_us = now_us;
            (stage.pipeline, stage.succs.clone())
        };
        let mut released = Vec::new();
        for succ in succs {
            let stage = &mut self.stages[succ];
            stage.deps_left -= 1;
            if stage.deps_left == 0 && stage.parked && !stage.rejected {
                stage.parked = false;
                stage.ready_us = now_us;
                released.push(succ);
            }
        }
        {
            let pipe = &mut self.pipes[pipeline];
            pipe.remaining -= 1;
            pipe.completed_stages += 1;
            pipe.finish_us = pipe.finish_us.max(now_us);
        }
        if self.pipes[pipeline].remaining == 0 && !self.pipes[pipeline].sealed {
            self.seal(pipeline);
        }
        released
    }

    /// A stage was rejected (admission, weighted-fair, unroutable fleet, or
    /// the cascade itself): fails its pipeline, seals the pipeline's fate
    /// through the reorder buffer, and returns the still-parked sibling
    /// stages to shed alongside it (stages already queued or running are
    /// left to finish).
    pub(crate) fn note_rejected(&mut self, index: usize, now_us: f64) -> Vec<usize> {
        let pipeline = self.stages[index].pipeline;
        {
            let stage = &mut self.stages[index];
            stage.rejected = true;
            stage.parked = false;
        }
        if self.pipes[pipeline].failed {
            return Vec::new();
        }
        self.pipes[pipeline].failed = true;
        self.pipes[pipeline].finish_us = self.pipes[pipeline].finish_us.max(now_us);
        if !self.pipes[pipeline].sealed {
            self.seal(pipeline);
        }
        let mut shed = Vec::new();
        for position in 0..self.pipes[pipeline].stages.len() {
            let sibling = self.pipes[pipeline].stages[position];
            let stage = &mut self.stages[sibling];
            if stage.parked && !stage.rejected {
                stage.parked = false;
                stage.rejected = true;
                shed.push(sibling);
            }
        }
        shed
    }

    /// Pushes the pipeline's finish into the reorder buffer and applies the
    /// in-order commits it retires.
    fn seal(&mut self, pipeline: usize) {
        self.pipes[pipeline].sealed = true;
        let session = self.pipes[pipeline].session;
        let finish = self.pipes[pipeline].finish_us;
        for (retired, commit_us) in self.rob.finish(session, pipeline, finish) {
            self.pipes[retired].commit_us = commit_us;
        }
    }

    /// Pipelines whose fate is not yet sealed (0 after a completed serve).
    pub(crate) fn in_flight(&self) -> usize {
        self.rob.in_flight()
    }

    /// Consumes the driver into the pipeline-level report: per-pipeline
    /// outcomes (submission order), per-depth [`StageMetrics`] and
    /// per-class [`ClassMetrics`].
    pub(crate) fn into_report(
        self,
    ) -> (Vec<PipelineOutcome>, Vec<StageMetrics>, Vec<ClassMetrics>) {
        let max_depth = self.stages.iter().map(|s| s.depth).max().unwrap_or(0);
        let mut depth_samples: Vec<Vec<f64>> = vec![Vec::new(); max_depth + 1];
        let mut depth_transfers = vec![0usize; max_depth + 1];
        let mut depth_transfer_us = vec![0.0f64; max_depth + 1];
        for stage in &self.stages {
            if stage.done {
                depth_samples[stage.depth].push(stage.completion_us - stage.ready_us);
            }
            depth_transfers[stage.depth] += stage.paid_transfers;
            depth_transfer_us[stage.depth] += stage.paid_transfer_us;
        }
        let stage_metrics = depth_samples
            .iter_mut()
            .enumerate()
            .map(|(depth, samples)| {
                StageMetrics::from_samples(
                    depth,
                    samples,
                    depth_transfers[depth],
                    depth_transfer_us[depth],
                )
            })
            .collect();
        let mut outcomes = Vec::with_capacity(self.pipes.len());
        for pipe in &self.pipes {
            let (transfers, transfer_us) = pipe.stages.iter().fold((0, 0.0), |acc, &s| {
                (
                    acc.0 + self.stages[s].paid_transfers,
                    acc.1 + self.stages[s].paid_transfer_us,
                )
            });
            let missed = !pipe.failed && pipe.deadline_us.is_some_and(|d| pipe.commit_us > d);
            outcomes.push(PipelineOutcome {
                id: pipe.id,
                session: pipe.session,
                slo: pipe.slo,
                arrival_us: pipe.arrival_us,
                finish_us: pipe.finish_us,
                commit_us: pipe.commit_us,
                stages: pipe.stages.len(),
                completed_stages: pipe.completed_stages,
                rejected: pipe.failed,
                transfers,
                transfer_us,
                deadline_us: pipe.deadline_us,
                missed_deadline: missed,
            });
        }
        let classes = class_metrics_from(&outcomes);
        (outcomes, stage_metrics, classes)
    }
}

/// Rolls pipeline outcomes up into per-class metrics, for the classes
/// actually present (shared by the driver path and the all-single-stage
/// fast path).
pub(crate) fn class_metrics_from(outcomes: &[PipelineOutcome]) -> Vec<ClassMetrics> {
    SloClass::ALL
        .iter()
        .filter_map(|&slo| {
            let of_class: Vec<&PipelineOutcome> =
                outcomes.iter().filter(|o| o.slo == slo).collect();
            if of_class.is_empty() {
                return None;
            }
            let mut latencies: Vec<f64> = of_class
                .iter()
                .filter(|o| !o.rejected)
                .map(|o| o.latency_us())
                .collect();
            let rejected = of_class.iter().filter(|o| o.rejected).count();
            let misses = of_class.iter().filter(|o| o.missed_deadline).count();
            let with_deadline = of_class
                .iter()
                .filter(|o| !o.rejected && o.deadline_us.is_some())
                .count();
            Some(ClassMetrics::from_samples(
                slo,
                &mut latencies,
                rejected,
                misses,
                with_deadline,
            ))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::KernelSpec;
    use overlay_sim::Workload;

    fn kernel(tag: u64) -> KernelSpec {
        KernelSpec::from_source(
            format!("k{tag}"),
            format!("kernel k{tag}(x) {{ out y = x + {tag}; }}"),
        )
    }

    fn chain(id: u64, session: u64, stages: usize) -> PipelineRequest {
        PipelineRequest::chain(
            id,
            session,
            (0..stages as u64).map(|tag| (kernel(tag), Workload::ramp(1, 4))),
        )
    }

    fn driver_for(pipelines: &[PipelineRequest], affinity: bool) -> (SessionDriver, usize) {
        let topos: Vec<Vec<usize>> = pipelines.iter().map(|p| p.validate().unwrap()).collect();
        let slo_of = BTreeMap::from([(7u64, SloClass::Latency), (9u64, SloClass::BestEffort)]);
        let (driver, requests) = SessionDriver::build(pipelines, &topos, &slo_of, affinity);
        (driver, requests.len())
    }

    #[test]
    fn parking_and_release_walk_a_chain_in_order() {
        let (mut driver, intake) = driver_for(&[chain(1, 7, 3)], true);
        assert_eq!(intake, 3);
        // Stage 0 is a root; stages 1 and 2 park behind their inputs.
        assert_eq!(driver.on_arrival(0), ArrivalAction::Proceed);
        assert_eq!(driver.on_arrival(1), ArrivalAction::Park);
        assert_eq!(driver.on_arrival(2), ArrivalAction::Park);
        // Completing 0 on device 2 releases exactly stage 1, whose affinity
        // candidate is the producer device.
        assert_eq!(driver.note_complete(0, 2, 10.0), vec![1]);
        assert_eq!(driver.affinity_target(1), Some(2));
        assert_eq!(driver.note_complete(1, 0, 20.0), vec![2]);
        assert!(driver.note_complete(2, 1, 30.0).is_empty());
        assert_eq!(driver.in_flight(), 0);
        let (outcomes, stages, classes) = driver.into_report();
        assert_eq!(outcomes.len(), 1);
        assert!(!outcomes[0].rejected);
        assert_eq!(outcomes[0].completed_stages, 3);
        assert_eq!(outcomes[0].finish_us, 30.0);
        assert_eq!(outcomes[0].commit_us, 30.0);
        assert_eq!(stages.len(), 3, "chain depths 0..=2");
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].slo, SloClass::Latency);
    }

    #[test]
    fn activation_plans_price_links_and_dead_producer_checkpoints() {
        let (mut driver, _) = driver_for(&[chain(1, 7, 2)], true);
        driver.note_complete(0, 3, 5.0);
        let transfer = TransferModel::new();
        // Consumer on the producer device: nothing moves.
        let (cost, moved) = driver.activation_plan(1, 3, &transfer, |_| true);
        assert_eq!(cost, 0.0);
        assert!(moved.is_empty());
        // One device over: one link hop for the default payload.
        let (cost, moved) = driver.activation_plan(1, 2, &transfer, |_| true);
        assert_eq!(cost, transfer.link_transfer_us(1, 4096));
        assert_eq!(moved, vec![(3, 4096)]);
        // Producer dead: the activation restores from the host checkpoint.
        let (cost, _) = driver.activation_plan(1, 2, &transfer, |d| d != 3);
        assert_eq!(cost, transfer.host_load_us(4096));
    }

    #[test]
    fn a_reject_cascades_to_parked_siblings_and_later_arrivals() {
        let (mut driver, _) = driver_for(&[chain(1, 9, 3), chain(2, 7, 1)], true);
        assert_eq!(driver.on_arrival(0), ArrivalAction::Proceed);
        assert_eq!(driver.on_arrival(1), ArrivalAction::Park);
        // Rejecting the root sheds the parked middle stage; stage 2 (not
        // yet arrived) is shed at its own arrival.
        assert_eq!(driver.note_rejected(0, 4.0), vec![1]);
        assert_eq!(driver.on_arrival(2), ArrivalAction::Reject);
        assert!(driver.note_rejected(2, 4.0).is_empty(), "already failed");
        // The other pipeline is untouched.
        assert_eq!(driver.on_arrival(3), ArrivalAction::Proceed);
        driver.note_complete(3, 0, 9.0);
        let (outcomes, _, classes) = driver.into_report();
        assert!(outcomes[0].rejected);
        assert_eq!(outcomes[0].completed_stages, 0);
        assert_eq!(outcomes[0].finish_us, 4.0);
        assert!(!outcomes[1].rejected);
        // Both classes present: best-effort carries the reject.
        assert_eq!(classes.len(), 2);
        assert_eq!(classes[0].slo, SloClass::Latency);
        assert_eq!(classes[1].slo, SloClass::BestEffort);
        assert_eq!(classes[1].rejected, 1);
    }

    #[test]
    fn weighted_fair_admission_caps_each_sessions_queue_share() {
        // Sessions 7 (latency, weight 4) and 9 (best-effort, weight 1).
        let (mut driver, _) = driver_for(&[chain(1, 7, 1), chain(2, 9, 1)], true);
        // Shares of limit 10 over total weight 5: latency 8, best-effort 2.
        for _ in 0..8 {
            assert!(driver.fair_admit(0, 10));
            driver.note_enqueued(0);
        }
        assert!(!driver.fair_admit(0, 10));
        for _ in 0..2 {
            assert!(driver.fair_admit(1, 10));
            driver.note_enqueued(1);
        }
        assert!(!driver.fair_admit(1, 10));
        // No limit: never capped.
        assert!(driver.fair_admit(0, usize::MAX));
        // Dequeues free the share again.
        driver.note_dequeued(0);
        assert!(driver.fair_admit(0, 10));
    }

    #[test]
    fn commits_retire_in_submission_order_within_a_session() {
        let (mut driver, _) = driver_for(&[chain(1, 7, 1), chain(2, 7, 1)], true);
        // The second pipeline finishes first; its commit waits for the
        // first and is clamped to it.
        driver.note_complete(1, 0, 50.0);
        driver.note_complete(0, 0, 80.0);
        let (outcomes, _, _) = driver.into_report();
        assert_eq!(outcomes[0].commit_us, 80.0);
        assert_eq!(outcomes[1].finish_us, 50.0);
        assert_eq!(outcomes[1].commit_us, 80.0, "in-order commit clamps");
        assert_eq!(outcomes[1].latency_us(), 80.0 - outcomes[1].arrival_us);
    }
}
