//! In-order per-session commit over out-of-order stage completion.
//!
//! Stages of different pipelines complete in whatever order the fleet's
//! queues and faults dictate, but each tenant observes its own pipelines
//! *commit* in submission order — the classic reorder-buffer contract from
//! in-order-retire processor simulators: results are produced out of order
//! into the buffer, and retire from the head only when everything older (in
//! the same session) has retired first.
//!
//! [`ReorderBuffer`] is that structure, one logical FIFO per session. The
//! cluster driver pushes pipelines at submission, marks them finished (or
//! failed) when their last stage commits (or their fate is sealed by a
//! reject), and gets back the newly-retirable `(pipeline, commit_us)` pairs —
//! where `commit_us` is the pipeline's own finish time clamped to never
//! precede the session's previous commit.

use std::collections::{BTreeMap, VecDeque};

/// Reorder buffer over pipelines: out-of-order finish, in-order per-session
/// commit.
#[derive(Debug, Default)]
pub struct ReorderBuffer {
    /// Per-session FIFO of pipeline indices, in submission order.
    queues: BTreeMap<u64, VecDeque<usize>>,
    /// Finish time per pipeline index, set when its last stage resolves.
    finish: Vec<Option<f64>>,
    /// Last commit time per session — commits are monotone within a session.
    last_commit: BTreeMap<u64, f64>,
}

impl ReorderBuffer {
    /// A buffer sized for `pipelines` entries.
    pub fn new(pipelines: usize) -> Self {
        ReorderBuffer {
            queues: BTreeMap::new(),
            finish: vec![None; pipelines],
            last_commit: BTreeMap::new(),
        }
    }

    /// Registers `pipeline` (an index chosen by the caller) at the tail of
    /// `session`'s commit queue. Call in submission order.
    pub fn push(&mut self, session: u64, pipeline: usize) {
        self.queues.entry(session).or_default().push_back(pipeline);
    }

    /// Marks `pipeline` finished at `finish_us` and retires every pipeline
    /// now unblocked at the head of `session`'s queue, oldest first.
    /// Returns the retired `(pipeline, commit_us)` pairs; `commit_us` is the
    /// pipeline's finish clamped to the session's previous commit.
    pub fn finish(&mut self, session: u64, pipeline: usize, finish_us: f64) -> Vec<(usize, f64)> {
        debug_assert!(
            self.finish[pipeline].is_none(),
            "a pipeline finishes at most once"
        );
        self.finish[pipeline] = Some(finish_us);
        let mut retired = Vec::new();
        let Some(queue) = self.queues.get_mut(&session) else {
            return retired;
        };
        while let Some(&head) = queue.front() {
            let Some(own_finish) = self.finish[head] else {
                break;
            };
            queue.pop_front();
            let previous = self.last_commit.get(&session).copied().unwrap_or(0.0);
            let commit_us = own_finish.max(previous);
            self.last_commit.insert(session, commit_us);
            retired.push((head, commit_us));
        }
        retired
    }

    /// Pipelines still waiting to retire (unfinished, or finished but
    /// blocked behind an older unfinished pipeline of the same session).
    pub fn in_flight(&self) -> usize {
        self.queues.values().map(VecDeque::len).sum()
    }
}

/// The weighted-fair queue share of one session under an admission limit:
/// `limit × weight / total_weight`, floored but never below 1 — every
/// session can always hold at least one waiting stage, and a latency-class
/// session (weight 4) holds 4× the queue space of a best-effort one
/// (weight 1).
pub(crate) fn fair_share(limit: usize, weight: u64, total_weight: u64) -> usize {
    if limit == usize::MAX || total_weight == 0 {
        return usize::MAX;
    }
    let share = (limit as u128 * u128::from(weight)) / u128::from(total_weight);
    (share as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_order_finishes_commit_in_submission_order() {
        let mut rob = ReorderBuffer::new(3);
        rob.push(1, 0);
        rob.push(1, 1);
        rob.push(1, 2);
        // Pipeline 1 finishes first: nothing retires (0 is still in flight).
        assert!(rob.finish(1, 1, 50.0).is_empty());
        assert_eq!(rob.in_flight(), 3);
        // Pipeline 0 finishes later in virtual time: both retire, and 1's
        // commit is clamped to 0's — in-order commit, monotone per session.
        assert_eq!(rob.finish(1, 0, 80.0), vec![(0, 80.0), (1, 80.0)]);
        assert_eq!(rob.finish(1, 2, 90.0), vec![(2, 90.0)]);
        assert_eq!(rob.in_flight(), 0);
    }

    #[test]
    fn sessions_retire_independently() {
        let mut rob = ReorderBuffer::new(2);
        rob.push(1, 0);
        rob.push(2, 1);
        // Session 2's pipeline retires immediately; session 1's backlog does
        // not block it.
        assert_eq!(rob.finish(2, 1, 10.0), vec![(1, 10.0)]);
        assert_eq!(rob.finish(1, 0, 30.0), vec![(0, 30.0)]);
    }

    #[test]
    fn fair_shares_scale_with_weight_and_never_hit_zero() {
        // limit 8, weights 4:2:1 over total 7 → shares 4, 2, 1.
        assert_eq!(fair_share(8, 4, 7), 4);
        assert_eq!(fair_share(8, 2, 7), 2);
        assert_eq!(fair_share(8, 1, 7), 1);
        // A tiny limit still grants every session one slot.
        assert_eq!(fair_share(1, 1, 7), 1);
        // No limit → no cap.
        assert_eq!(fair_share(usize::MAX, 1, 7), usize::MAX);
    }
}
