//! Pipeline requests: a validated DAG of kernel stages served as one unit.
//!
//! A [`PipelineRequest`] names a small directed acyclic graph of
//! [`KernelSpec`] stages — the multi-kernel workloads real tenants run, where
//! one kernel's outputs become the next kernel's activations. Validation
//! happens once, at submit time ([`PipelineRequest::validate`]): every
//! dependency edge is arity-checked (in range, no self-loops, no duplicate
//! edges), the graph is proven acyclic, and a deterministic topological order
//! is computed so the cluster's event loop can flatten the stages into its
//! intake without ever re-walking the graph.
//!
//! A single-stage pipeline is exactly today's [`Request`] wearing a session
//! id: [`PipelineRequest::lower_to_request`] produces the identical request
//! the plain serving path would have seen, which is what lets the cluster
//! lower an all-single-stage batch onto the unchanged [`Cluster::serve`]
//! path — proptest-pinned bitwise identical to the pre-session runtime.
//!
//! [`Cluster::serve`]: crate::Cluster::serve

use crate::error::RuntimeError;
use crate::request::{KernelSpec, Request};
use overlay_sim::Workload;

/// Default activation payload a stage hands its successors when the caller
/// does not size it explicitly: one 4 KiB output tile.
pub const DEFAULT_ACTIVATION_BYTES: u64 = 4096;

/// Stage ids are packed into the low bits of synthesized per-stage request
/// ids, so a pipeline id must fit in the remaining 48 bits.
pub(crate) const STAGE_ID_BITS: u32 = 16;

/// One stage of a pipeline: a kernel, the workload streamed through it, the
/// stages whose outputs it consumes, and the activation bytes it emits for
/// its own successors.
#[derive(Debug, Clone)]
pub struct PipelineStage {
    /// The kernel this stage runs.
    pub kernel: KernelSpec,
    /// The invocation records streamed through the kernel.
    pub workload: Workload,
    /// Indices (within the owning pipeline) of the stages whose outputs this
    /// stage consumes. Empty for root stages.
    pub deps: Vec<usize>,
    /// Bytes of activation data this stage produces for each consumer —
    /// what the [`TransferModel`](crate::TransferModel) prices when a
    /// consumer lands on a different device.
    pub output_bytes: u64,
}

impl PipelineStage {
    /// A root stage (no dependencies) emitting
    /// [`DEFAULT_ACTIVATION_BYTES`] of activations.
    pub fn new(kernel: KernelSpec, workload: Workload) -> Self {
        PipelineStage {
            kernel,
            workload,
            deps: Vec::new(),
            output_bytes: DEFAULT_ACTIVATION_BYTES,
        }
    }

    /// Declares the stages (by index within the pipeline) this stage
    /// consumes outputs from.
    #[must_use]
    pub fn after(mut self, deps: &[usize]) -> Self {
        self.deps = deps.to_vec();
        self
    }

    /// Sizes the activation payload this stage emits.
    #[must_use]
    pub fn emits(mut self, output_bytes: u64) -> Self {
        self.output_bytes = output_bytes;
        self
    }
}

/// A multi-kernel serving request: a DAG of [`PipelineStage`]s submitted by
/// one tenant session, arriving as a unit on the modeled timeline.
///
/// The deadline, when set, is the completion deadline of the *pipeline* — it
/// attaches to the sink stages (those nothing depends on); interior stages
/// run deadline-free.
#[derive(Debug, Clone)]
pub struct PipelineRequest {
    /// Caller-chosen identifier, echoed per stage into outcomes. Must fit in
    /// 48 bits when the pipeline has more than one stage (stage ids are
    /// packed into the low [`STAGE_ID_BITS`] bits of per-stage request ids).
    pub id: u64,
    /// The tenant [`Session`](crate::session::Session) this pipeline belongs
    /// to, by id. Sessions carry the SLO class.
    pub session: u64,
    /// Arrival time of the whole pipeline, microseconds.
    pub arrival_us: f64,
    /// Optional absolute completion deadline for the pipeline's sinks.
    pub deadline_us: Option<f64>,
    /// The stages, in submission order. Dependency indices refer into this
    /// vector.
    pub stages: Vec<PipelineStage>,
}

impl PipelineRequest {
    /// An empty pipeline for session `session`, arriving at time zero.
    pub fn new(id: u64, session: u64) -> Self {
        PipelineRequest {
            id,
            session,
            arrival_us: 0.0,
            deadline_us: None,
            stages: Vec::new(),
        }
    }

    /// Sets the arrival time (microseconds on the modeled timeline).
    #[must_use]
    pub fn at(mut self, arrival_us: f64) -> Self {
        self.arrival_us = arrival_us;
        self
    }

    /// Sets the pipeline's absolute completion deadline (attached to the
    /// sink stages).
    #[must_use]
    pub fn with_deadline(mut self, deadline_us: f64) -> Self {
        self.deadline_us = Some(deadline_us);
        self
    }

    /// Appends a stage.
    #[must_use]
    pub fn stage(mut self, stage: PipelineStage) -> Self {
        self.stages.push(stage);
        self
    }

    /// A linear chain: each stage depends on the previous one. The common
    /// pipeline shape (preprocess → infer → postprocess) without spelling
    /// out edge lists.
    pub fn chain(
        id: u64,
        session: u64,
        stages: impl IntoIterator<Item = (KernelSpec, Workload)>,
    ) -> Self {
        let mut pipeline = PipelineRequest::new(id, session);
        for (index, (kernel, workload)) in stages.into_iter().enumerate() {
            let mut stage = PipelineStage::new(kernel, workload);
            if index > 0 {
                stage = stage.after(&[index - 1]);
            }
            pipeline = pipeline.stage(stage);
        }
        pipeline
    }

    /// Whether the pipeline is a single stage — servable as a plain
    /// [`Request`] with no session machinery at all.
    pub fn is_single_stage(&self) -> bool {
        self.stages.len() == 1
    }

    /// The synthesized request id for `stage`: the pipeline id for
    /// single-stage pipelines (so lowering is identity-preserving), else the
    /// pipeline id shifted past [`STAGE_ID_BITS`] with the stage index in
    /// the low bits.
    pub fn stage_request_id(&self, stage: usize) -> u64 {
        if self.is_single_stage() {
            self.id
        } else {
            (self.id << STAGE_ID_BITS) | stage as u64
        }
    }

    /// Lowers a single-stage pipeline to the exact plain [`Request`] the
    /// pre-session runtime would have served: same id, arrival and deadline.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline has more than one stage (callers check
    /// [`is_single_stage`](Self::is_single_stage) first).
    pub fn lower_to_request(&self) -> Request {
        assert!(
            self.is_single_stage(),
            "only single-stage pipelines lower to a plain Request"
        );
        let stage = &self.stages[0];
        let mut request =
            Request::new(self.id, stage.kernel.clone(), stage.workload.clone()).at(self.arrival_us);
        if let Some(deadline) = self.deadline_us {
            request = request.with_deadline(deadline);
        }
        request
    }

    /// Validates the DAG and returns its stages in a deterministic
    /// topological order (Kahn's algorithm, ready stages released in
    /// ascending index order).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::InvalidPipeline`] when the pipeline is empty, an edge
    /// is out of range / a self-loop / duplicated, the graph has a cycle, or
    /// a multi-stage pipeline's id or stage count overflows the packed
    /// request-id layout.
    pub fn validate(&self) -> Result<Vec<usize>, RuntimeError> {
        let invalid = |reason: String| RuntimeError::InvalidPipeline {
            pipeline: self.id,
            reason,
        };
        let n = self.stages.len();
        if n == 0 {
            return Err(invalid("pipeline has no stages".into()));
        }
        if n > 1 {
            if n > 1 << STAGE_ID_BITS {
                return Err(invalid(format!(
                    "pipeline has {n} stages; at most {} fit the packed stage-id layout",
                    1usize << STAGE_ID_BITS
                )));
            }
            if self.id >> (64 - STAGE_ID_BITS) != 0 {
                return Err(invalid(format!(
                    "multi-stage pipeline id {} does not fit in {} bits",
                    self.id,
                    64 - STAGE_ID_BITS
                )));
            }
        }
        // Arity checks and in-degree counting in one pass.
        let mut in_degree = vec![0usize; n];
        let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (index, stage) in self.stages.iter().enumerate() {
            let mut seen = vec![false; n];
            for &dep in &stage.deps {
                if dep >= n {
                    return Err(invalid(format!(
                        "stage {index} depends on stage {dep}, but there are only {n} stages"
                    )));
                }
                if dep == index {
                    return Err(invalid(format!("stage {index} depends on itself")));
                }
                if seen[dep] {
                    return Err(invalid(format!(
                        "stage {index} lists dependency {dep} twice"
                    )));
                }
                seen[dep] = true;
                in_degree[index] += 1;
                successors[dep].push(index);
            }
        }
        // Kahn's algorithm with a deterministic (ascending-index) ready
        // queue: a BinaryHeap of Reverse(index).
        let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
            .filter(|&index| in_degree[index] == 0)
            .map(std::cmp::Reverse)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(std::cmp::Reverse(index)) = ready.pop() {
            order.push(index);
            for &succ in &successors[index] {
                in_degree[succ] -= 1;
                if in_degree[succ] == 0 {
                    ready.push(std::cmp::Reverse(succ));
                }
            }
        }
        if order.len() != n {
            let stuck: Vec<usize> = (0..n).filter(|&index| in_degree[index] > 0).collect();
            return Err(invalid(format!(
                "dependency cycle through stages {stuck:?}"
            )));
        }
        Ok(order)
    }

    /// The sink stages: those no other stage depends on. The pipeline
    /// deadline attaches to these.
    pub fn sinks(&self) -> Vec<usize> {
        let mut is_dep = vec![false; self.stages.len()];
        for stage in &self.stages {
            for &dep in &stage.deps {
                if dep < is_dep.len() {
                    is_dep[dep] = true;
                }
            }
        }
        (0..self.stages.len())
            .filter(|&index| !is_dep[index])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel(tag: u64) -> KernelSpec {
        KernelSpec::from_source(
            format!("k{tag}"),
            format!("kernel k{tag}(x) {{ out y = x + {tag}; }}"),
        )
    }

    fn stage(tag: u64) -> PipelineStage {
        PipelineStage::new(kernel(tag), Workload::ramp(1, 4))
    }

    #[test]
    fn a_diamond_validates_in_ascending_topo_order() {
        // 0 → {1, 2} → 3
        let pipeline = PipelineRequest::new(7, 1)
            .stage(stage(0))
            .stage(stage(1).after(&[0]))
            .stage(stage(2).after(&[0]))
            .stage(stage(3).after(&[1, 2]));
        assert_eq!(pipeline.validate().unwrap(), vec![0, 1, 2, 3]);
        assert_eq!(pipeline.sinks(), vec![3]);
        assert_eq!(pipeline.stage_request_id(2), (7 << STAGE_ID_BITS) | 2);
    }

    #[test]
    fn chains_link_each_stage_to_the_previous() {
        let pipeline =
            PipelineRequest::chain(1, 0, (0..3).map(|tag| (kernel(tag), Workload::ramp(1, 4))));
        assert_eq!(pipeline.stages[0].deps, Vec::<usize>::new());
        assert_eq!(pipeline.stages[1].deps, vec![0]);
        assert_eq!(pipeline.stages[2].deps, vec![1]);
        assert_eq!(pipeline.validate().unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn cycles_self_loops_and_bad_edges_are_rejected() {
        let cyclic = PipelineRequest::new(1, 0)
            .stage(stage(0).after(&[1]))
            .stage(stage(1).after(&[0]));
        assert!(matches!(
            cyclic.validate(),
            Err(RuntimeError::InvalidPipeline { pipeline: 1, .. })
        ));
        let self_loop = PipelineRequest::new(2, 0).stage(stage(0).after(&[0]));
        assert!(self_loop.validate().is_err());
        let out_of_range = PipelineRequest::new(3, 0).stage(stage(0).after(&[5]));
        assert!(out_of_range.validate().is_err());
        let duplicate = PipelineRequest::new(4, 0)
            .stage(stage(0))
            .stage(stage(1).after(&[0, 0]));
        assert!(duplicate.validate().is_err());
        assert!(PipelineRequest::new(5, 0).validate().is_err(), "empty");
        let wide_id = PipelineRequest::new(1 << 50, 0)
            .stage(stage(0))
            .stage(stage(1).after(&[0]));
        assert!(
            wide_id.validate().is_err(),
            "id overflows the packed layout"
        );
    }

    #[test]
    fn single_stage_pipelines_lower_to_the_identical_plain_request() {
        let pipeline = PipelineRequest::new(9, 3)
            .at(125.0)
            .with_deadline(500.0)
            .stage(stage(0).emits(1 << 20));
        assert!(pipeline.is_single_stage());
        assert_eq!(pipeline.stage_request_id(0), 9, "id survives lowering");
        let request = pipeline.lower_to_request();
        assert_eq!(request.id, 9);
        assert_eq!(request.arrival_us, 125.0);
        assert_eq!(request.deadline_us, Some(500.0));
        assert_eq!(
            request.kernel.fingerprint(),
            pipeline.stages[0].kernel.fingerprint()
        );
    }
}
