//! The session tier: multi-kernel pipeline requests, SLO classes, and
//! in-order per-tenant commit.
//!
//! Real tenants run *pipelines* — chains and small DAGs of kernels with data
//! flowing between stages — not isolated single-kernel invocations. This
//! module is the request-shaping half of that tier:
//!
//! * [`dag`] — [`PipelineRequest`] / [`PipelineStage`]: a validated DAG of
//!   [`KernelSpec`](crate::KernelSpec) stages, cycle/arity-checked and
//!   topo-ordered once at submit;
//! * [`slo`] — [`Session`] / [`SloClass`]: the tenancy unit and its latency
//!   tier (admission weighting + dispatch bias, weighted-fair across
//!   sessions);
//! * [`sched`] — [`ReorderBuffer`]: out-of-order stage completion, in-order
//!   per-session pipeline commit (the processor-simulator ROB idiom).
//!
//! The serving half lives in [`Cluster::serve_pipelines`]: the cluster event
//! loop gains a stage-completion edge (a committing stage releases the
//! successors whose inputs are now all ready), inter-stage activations are
//! priced by the existing [`TransferModel`](crate::TransferModel) when
//! consecutive stages land on different devices, and routing learns *stage
//! affinity* — keep a pipeline's next stage near its producer's output
//! unless queue load says otherwise.
//!
//! Everything here is opt-in and equivalence-pinned: a batch of single-stage
//! pipelines under all-standard sessions lowers onto the unchanged
//! [`Cluster::serve`] path and is bitwise identical to the pre-session
//! runtime.
//!
//! [`Cluster::serve`]: crate::Cluster::serve
//! [`Cluster::serve_pipelines`]: crate::Cluster::serve_pipelines

pub mod dag;
pub(crate) mod driver;
pub mod sched;
pub mod slo;

pub use dag::{PipelineRequest, PipelineStage, DEFAULT_ACTIVATION_BYTES};
pub use sched::ReorderBuffer;
pub use slo::{Session, SloClass};

use crate::cluster::ClusterReport;
use crate::metrics::{ClassMetrics, StageMetrics};

/// What happened to one pipeline: when it finished, when it *committed*
/// (in submission order within its session), and what its stages paid in
/// inter-device activation transfers.
#[derive(Debug, Clone)]
pub struct PipelineOutcome {
    /// The pipeline id, as submitted.
    pub id: u64,
    /// The owning session id.
    pub session: u64,
    /// The SLO class the pipeline was served under.
    pub slo: SloClass,
    /// Arrival of the pipeline, microseconds.
    pub arrival_us: f64,
    /// Completion time of the last stage (or of the reject that sealed the
    /// pipeline's fate), microseconds.
    pub finish_us: f64,
    /// In-order commit time through the session's reorder buffer: never
    /// earlier than `finish_us`, never earlier than the session's previous
    /// commit.
    pub commit_us: f64,
    /// Total stages submitted.
    pub stages: usize,
    /// Stages that ran to completion.
    pub completed_stages: usize,
    /// Whether the pipeline failed (at least one stage was rejected).
    pub rejected: bool,
    /// Inter-device activation transfers its stages paid.
    pub transfers: usize,
    /// Total modeled activation-transfer time, microseconds.
    pub transfer_us: f64,
    /// The pipeline deadline, if any (attached to sink stages).
    pub deadline_us: Option<f64>,
    /// Whether a completed pipeline committed past its deadline.
    pub missed_deadline: bool,
}

impl PipelineOutcome {
    /// Commit latency: in-order commit minus arrival.
    pub fn latency_us(&self) -> f64 {
        self.commit_us - self.arrival_us
    }
}

/// Everything [`Cluster::serve_pipelines`](crate::Cluster::serve_pipelines)
/// returns: the underlying per-stage cluster report plus the pipeline-level
/// view.
#[derive(Debug)]
pub struct PipelineReport {
    /// The per-stage serve: every stage is one
    /// [`RequestOutcome`](crate::RequestOutcome) in here.
    pub cluster: ClusterReport,
    /// Per-pipeline outcomes, in submission order.
    pub pipelines: Vec<PipelineOutcome>,
    /// Latency breakdown per stage depth (position in topological order).
    pub stages: Vec<StageMetrics>,
    /// Latency breakdown per SLO class, for the classes present.
    pub classes: Vec<ClassMetrics>,
}

impl PipelineReport {
    /// Pipelines that ran every stage to completion.
    pub fn completed(&self) -> usize {
        self.pipelines.iter().filter(|p| !p.rejected).count()
    }

    /// Total inter-device activation transfers paid across all pipelines.
    pub fn activation_transfers(&self) -> usize {
        self.pipelines.iter().map(|p| p.transfers).sum()
    }

    /// The per-class breakdown for `slo`, if any pipeline ran under it.
    pub fn class(&self, slo: SloClass) -> Option<&ClassMetrics> {
        self.classes.iter().find(|c| c.slo == slo)
    }
}
