//! # overlay-runtime — a multi-tile serving runtime for the TM overlay
//!
//! The paper's Sec. III-A.3 proposes replicating depth-8 write-back overlays
//! into NoC-connected *tiles*, and Sec. V shows their killer feature: a
//! ~0.25 µs hardware context switch (instruction reload) against ~1 ms of
//! PCAP partial reconfiguration for the feed-forward overlays. This crate
//! turns those models into a serving system:
//!
//! * [`TilePool`] — N replicated tiles (from [`overlay_arch::Tile`] /
//!   [`overlay_arch::NocConfig`]), each hosting one resident kernel;
//! * [`KernelCache`] — an LRU over compiled kernels keyed by source hash +
//!   variant + depth, so each distinct kernel compiles once per trace;
//! * [`Dispatcher`] — context-switch-aware placement: the
//!   [kernel-affinity policy](DispatchPolicy::KernelAffinity) charges the
//!   [`overlay_arch::ReconfigModel`] swap cost (µs instruction reload for
//!   V3–V5, ms PCAP for `[14]`/V1/V2) whenever a tile must change kernels;
//! * parallel tile execution — each tile's requests run on their own host
//!   thread wrapping [`overlay_sim::OverlaySimulator`];
//! * [`RuntimeMetrics`] — requests/s, p50/p99 modeled latency, per-tile
//!   utilization, cache hit rate and context-switch totals.
//!
//! # Example
//!
//! ```
//! use overlay_runtime::{DispatchPolicy, KernelSpec, Request, Runtime};
//! use overlay_arch::FuVariant;
//! use overlay_sim::Workload;
//!
//! # fn main() -> Result<(), overlay_runtime::RuntimeError> {
//! let mut runtime = Runtime::new(FuVariant::V4, 2)?
//!     .with_policy(DispatchPolicy::KernelAffinity);
//!
//! let saxpy = KernelSpec::from_source("saxpy", "kernel saxpy(a, x, y) { out r = a * x + y; }");
//! let poly = KernelSpec::from_source("poly", "kernel poly(x) { out y = (x * x + 3) * x; }");
//! let requests: Vec<Request> = (0..8)
//!     .map(|i| {
//!         let (kernel, inputs) = if i % 2 == 0 { (saxpy.clone(), 3) } else { (poly.clone(), 1) };
//!         Request::new(i, kernel, Workload::ramp(inputs, 16)).at(i as f64)
//!     })
//!     .collect();
//!
//! let report = runtime.serve(&requests)?;
//! assert_eq!(report.outcomes().len(), 8);
//! // Each kernel compiled once; every later request hit the cache.
//! assert_eq!(report.metrics().cache.misses, 2);
//! assert_eq!(report.metrics().cache.hits, 6);
//! // Affinity pins each kernel to a tile: one cold-start switch per tile.
//! assert_eq!(report.metrics().switch_count, 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod dispatch;
pub mod error;
pub mod metrics;
pub mod pool;
pub mod request;

pub use cache::{CacheStats, KernelCache, KernelKey};
pub use dispatch::{DispatchPolicy, Dispatcher, Placement, PlanItem};
pub use error::RuntimeError;
pub use metrics::RuntimeMetrics;
pub use pool::{ChargeOutcome, TilePool, TileState};
pub use request::{KernelSpec, Request};

use std::sync::Arc;
use std::thread;

use overlay_arch::{FuVariant, NocConfig, OverlayConfig, ReconfigModel, TileComposition};
use overlay_dfg::Value;
use overlay_frontend::LowerOptions;
use overlay_scheduler::{generate_program, schedule, CompiledKernel};
use overlay_sim::{OverlaySimulator, SimMetrics, SimRun};

/// What happened to one request: where it ran, what it produced and the
/// modeled timing it experienced.
#[derive(Debug, Clone)]
pub struct RequestOutcome {
    /// The caller-chosen request id.
    pub request_id: u64,
    /// The kernel name.
    pub kernel: String,
    /// The tile that served the request.
    pub tile: usize,
    /// Functional outputs, one record per invocation.
    pub outputs: Vec<Vec<Value>>,
    /// The simulator's cycle-level metrics for this request.
    pub sim: SimMetrics,
    /// When queueing ended and the switch/execution began, microseconds.
    pub start_us: f64,
    /// When the last output left the NoC, microseconds.
    pub completion_us: f64,
    /// Completion minus arrival, microseconds.
    pub latency_us: f64,
    /// Whether serving this request required a hardware context switch.
    pub switched: bool,
    /// Whether a deadline was set and missed.
    pub missed_deadline: bool,
}

/// The result of one [`Runtime::serve`] call: per-request outcomes (in
/// request order), the placement that produced them and aggregate metrics.
#[derive(Debug, Clone)]
pub struct ServeReport {
    placement: Placement,
    outcomes: Vec<RequestOutcome>,
    metrics: RuntimeMetrics,
}

impl ServeReport {
    /// Per-request outcomes, in request order.
    pub fn outcomes(&self) -> &[RequestOutcome] {
        &self.outcomes
    }

    /// The tile assignment that produced the outcomes.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Aggregate serving metrics.
    pub fn metrics(&self) -> &RuntimeMetrics {
        &self.metrics
    }
}

/// Everything `serve` derives per request before execution starts.
struct Prepared {
    key: KernelKey,
    compiled: Arc<CompiledKernel>,
    fmax_mhz: f64,
    switch_us: f64,
}

/// A multi-tile serving runtime over one overlay variant.
///
/// See the [crate-level documentation](crate) for the moving parts and an
/// end-to-end example.
#[derive(Debug)]
pub struct Runtime {
    pool: TilePool,
    dispatcher: Dispatcher,
    cache: KernelCache,
    reconfig: ReconfigModel,
    lower: LowerOptions,
}

impl Runtime {
    /// Default capacity of the kernel cache.
    pub const DEFAULT_CACHE_CAPACITY: usize = 64;

    /// A runtime of `tiles` parallel-composition tiles of `variant` on a
    /// single-row NoC, using kernel-affinity dispatch.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::EmptyPool`] when `tiles` is 0.
    pub fn new(variant: FuVariant, tiles: usize) -> Result<Self, RuntimeError> {
        let pool = TilePool::with_tiles(variant, TileComposition::Parallel, tiles)?;
        Ok(Self::from_pool(pool))
    }

    /// A runtime over an explicit NoC layout (rows × cols of a chosen tile).
    pub fn from_noc(noc: NocConfig) -> Self {
        Self::from_pool(TilePool::new(noc))
    }

    fn from_pool(pool: TilePool) -> Self {
        Runtime {
            pool,
            dispatcher: Dispatcher::default(),
            cache: KernelCache::new(Self::DEFAULT_CACHE_CAPACITY)
                .expect("default capacity is non-zero"),
            reconfig: ReconfigModel::new(),
            lower: LowerOptions::default(),
        }
    }

    /// Sets the dispatch policy.
    #[must_use]
    pub fn with_policy(mut self, policy: DispatchPolicy) -> Self {
        self.dispatcher = Dispatcher::new(policy);
        self
    }

    /// Replaces the kernel cache with one of `capacity` entries.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::ZeroCacheCapacity`] when `capacity` is 0.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Result<Self, RuntimeError> {
        self.cache = KernelCache::new(capacity)?;
        Ok(self)
    }

    /// Overrides the reconfiguration timing model.
    #[must_use]
    pub fn with_reconfig(mut self, model: ReconfigModel) -> Self {
        self.reconfig = model;
        self
    }

    /// Overrides the front-end lowering options.
    ///
    /// Clears the kernel cache: cached artifacts were compiled under the old
    /// options and their [`KernelKey`] does not encode lowering options.
    #[must_use]
    pub fn with_lower_options(mut self, options: LowerOptions) -> Self {
        self.lower = options;
        self.cache.clear();
        self
    }

    /// The overlay variant all tiles are built from.
    pub fn variant(&self) -> FuVariant {
        self.pool.variant()
    }

    /// The active dispatch policy.
    pub fn policy(&self) -> DispatchPolicy {
        self.dispatcher.policy()
    }

    /// The tile pool (holding the state left by the last serve).
    pub fn pool(&self) -> &TilePool {
        &self.pool
    }

    /// The kernel cache (counters accumulate across serves).
    pub fn cache(&self) -> &KernelCache {
        &self.cache
    }

    /// Serves a trace of requests: compiles each distinct kernel once
    /// (through the cache), places every request on a tile under the active
    /// dispatch policy, executes the tiles' queues on parallel host threads,
    /// and aggregates outcomes on the modeled timeline.
    ///
    /// Requests are placed in trace order; arrivals should be non-decreasing
    /// for the queueing model to be meaningful.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] for an empty trace, invalid arrival times,
    /// or any compile/simulation failure (reported for the earliest failing
    /// request).
    pub fn serve(&mut self, requests: &[Request]) -> Result<ServeReport, RuntimeError> {
        if requests.is_empty() {
            return Err(RuntimeError::NoRequests);
        }
        for request in requests {
            if !request.arrival_us.is_finite() || request.arrival_us < 0.0 {
                return Err(RuntimeError::InvalidArrival {
                    request: request.id,
                    arrival_us: request.arrival_us,
                });
            }
        }

        let cache_before = self.cache.stats();
        let prepared = self.prepare(requests)?;

        // Phase 1: placement. The dispatcher plans against estimated
        // execution times; the pool is replayed with measured times below.
        let items: Vec<PlanItem> = prepared
            .iter()
            .zip(requests)
            .map(|(prep, request)| PlanItem {
                key: prep.key,
                arrival_us: request.arrival_us,
                est_exec_us: Self::estimate_cycles(&prep.compiled, request.workload.len())
                    / prep.fmax_mhz,
                switch_us: prep.switch_us,
            })
            .collect();
        self.pool.reset();
        let placement = self.dispatcher.plan(&items, &mut self.pool);

        // Phase 2: parallel execution, one host thread per tile queue.
        let runs = self.execute_parallel(requests, &prepared, &placement)?;

        // Phase 3: replay the modeled timeline with measured cycle counts.
        self.pool.reset();
        let mut outcomes = Vec::with_capacity(requests.len());
        for (index, (request, run)) in requests.iter().zip(runs).enumerate() {
            let prep = &prepared[index];
            let tile = placement.assignments[index];
            let run = run.expect("execute_parallel fills every slot on success");
            let exec_cycles = run.metrics().total_cycles + self.pool.roundtrip_cycles(tile);
            let exec_us = exec_cycles as f64 / prep.fmax_mhz;
            let state = &mut self.pool.states_mut()[tile];
            let charged = state.charge(prep.key, request.arrival_us, prep.switch_us, exec_us);
            outcomes.push(RequestOutcome {
                request_id: request.id,
                kernel: request.kernel.name().to_owned(),
                tile,
                sim: *run.metrics(),
                outputs: run.outputs().to_vec(),
                start_us: charged.start_us,
                completion_us: charged.completion_us,
                latency_us: charged.completion_us - request.arrival_us,
                switched: charged.switched,
                missed_deadline: request
                    .deadline_us
                    .is_some_and(|deadline| charged.completion_us > deadline),
            });
        }

        let cache_after = self.cache.stats();
        let cache = CacheStats {
            hits: cache_after.hits - cache_before.hits,
            misses: cache_after.misses - cache_before.misses,
            evictions: cache_after.evictions - cache_before.evictions,
        };
        let metrics = self.aggregate(&outcomes, cache);
        Ok(ServeReport {
            placement,
            outcomes,
            metrics,
        })
    }

    /// Compiles (via the cache) and derives the timing figures every request
    /// needs before placement.
    fn prepare(&mut self, requests: &[Request]) -> Result<Vec<Prepared>, RuntimeError> {
        let variant = self.pool.variant();
        let writeback = variant.has_writeback();
        let depth = if writeback {
            self.pool.logical_depth()
        } else {
            0
        };
        let tile_overlay = self.pool.overlay_config()?;
        let mut prepared = Vec::with_capacity(requests.len());
        for request in requests {
            let key = KernelKey {
                fingerprint: request.kernel.fingerprint(),
                variant,
                depth,
            };
            let lower = &self.lower;
            let spec = &request.kernel;
            let compiled = self.cache.get_or_compile(key, || {
                let dfg = spec.dfg(lower)?;
                let fixed_depth = writeback.then_some(depth);
                let stages = schedule(&dfg, variant, fixed_depth)?;
                Ok(generate_program(&dfg, &stages, variant)?)
            })?;
            let config_bits = compiled.program.config_bits();
            let (fmax_mhz, switch_us) = match tile_overlay {
                // Write-back tile: fixed overlay, instruction reload only.
                Some(config) => (
                    config.fmax_mhz(),
                    self.reconfig
                        .program_only_switch(variant, config_bits)
                        .total_us(),
                ),
                // Feed-forward tile: the overlay is rebuilt to the kernel's
                // depth, so a swap pays PCAP partial reconfiguration.
                None => {
                    let config = OverlayConfig::new(variant, compiled.num_fus())?;
                    (
                        config.fmax_mhz(),
                        self.reconfig.full_switch(&config, config_bits).total_us(),
                    )
                }
            };
            prepared.push(Prepared {
                key,
                compiled,
                fmax_mhz,
                switch_us,
            });
        }
        Ok(prepared)
    }

    /// Planning estimate of a request's execution cycles: steady-state II per
    /// invocation plus a pipeline-fill allowance.
    fn estimate_cycles(compiled: &CompiledKernel, blocks: usize) -> f64 {
        compiled.ii * blocks as f64 + (4 * compiled.num_fus()) as f64
    }

    /// Runs every tile's request queue on its own host thread. Results come
    /// back in request order; the earliest failing request's error wins.
    fn execute_parallel(
        &self,
        requests: &[Request],
        prepared: &[Prepared],
        placement: &Placement,
    ) -> Result<Vec<Option<SimRun>>, RuntimeError> {
        let mut queues: Vec<Vec<usize>> = vec![Vec::new(); self.pool.num_tiles()];
        for (index, &tile) in placement.assignments.iter().enumerate() {
            queues[tile].push(index);
        }
        let variant = self.pool.variant();
        let mut runs: Vec<Option<SimRun>> = Vec::new();
        runs.resize_with(requests.len(), || None);
        let mut failure: Option<(usize, RuntimeError)> = None;
        thread::scope(|scope| {
            let handles: Vec<_> = queues
                .iter()
                .filter(|queue| !queue.is_empty())
                .map(|queue| {
                    scope.spawn(move || {
                        let simulator = OverlaySimulator::new(variant).with_trace_capacity(0);
                        queue
                            .iter()
                            .map(|&index| {
                                let run = simulator
                                    .run(&prepared[index].compiled, &requests[index].workload);
                                (index, run)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                for (index, run) in handle.join().expect("tile worker panicked") {
                    match run {
                        Ok(run) => runs[index] = Some(run),
                        Err(err) => {
                            if failure.as_ref().is_none_or(|(worst, _)| index < *worst) {
                                failure = Some((index, err.into()));
                            }
                        }
                    }
                }
            }
        });
        match failure {
            Some((_, err)) => Err(err),
            None => Ok(runs),
        }
    }

    /// Folds per-request outcomes and pool state into [`RuntimeMetrics`].
    fn aggregate(&self, outcomes: &[RequestOutcome], cache: CacheStats) -> RuntimeMetrics {
        let requests = outcomes.len();
        let invocations = outcomes.iter().map(|o| o.sim.blocks).sum();
        let makespan_us = outcomes
            .iter()
            .map(|o| o.completion_us)
            .fold(0.0_f64, f64::max);
        let mut latencies: Vec<f64> = outcomes.iter().map(|o| o.latency_us).collect();
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let mean_latency_us = latencies.iter().sum::<f64>() / requests.max(1) as f64;
        let per_second = if makespan_us > 0.0 {
            1.0e6 / makespan_us
        } else {
            0.0
        };
        let states = self.pool.states();
        RuntimeMetrics {
            requests,
            invocations,
            makespan_us,
            requests_per_sec: requests as f64 * per_second,
            invocations_per_sec: invocations as f64 * per_second,
            mean_latency_us,
            p50_latency_us: metrics::percentile(&latencies, 0.50),
            p99_latency_us: metrics::percentile(&latencies, 0.99),
            max_latency_us: latencies.last().copied().unwrap_or(0.0),
            switch_count: states.iter().map(|s| s.switches).sum(),
            total_switch_us: states.iter().map(|s| s.switch_us).sum(),
            tile_utilization: states
                .iter()
                .map(|s| {
                    if makespan_us > 0.0 {
                        s.busy_us / makespan_us
                    } else {
                        0.0
                    }
                })
                .collect(),
            tile_requests: states.iter().map(|s| s.served).collect(),
            cache,
            deadline_misses: outcomes.iter().filter(|o| o.missed_deadline).count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay_dfg::evaluate_stream;
    use overlay_frontend::Benchmark;
    use overlay_sim::Workload;

    fn benchmark_trace(count: usize, blocks: usize) -> Vec<Request> {
        let suite = [
            Benchmark::Gradient,
            Benchmark::Chebyshev,
            Benchmark::Qspline,
            Benchmark::Poly5,
        ];
        (0..count)
            .map(|i| {
                let benchmark = suite[i % suite.len()];
                let spec = KernelSpec::from_benchmark(benchmark).unwrap();
                let inputs = benchmark.dfg().unwrap().num_inputs();
                let workload = Workload::random(inputs, blocks, 0xFEED ^ i as u64);
                Request::new(i as u64, spec, workload).at(i as f64 * 2.0)
            })
            .collect()
    }

    #[test]
    fn serving_matches_the_reference_evaluator_per_request() {
        let requests = benchmark_trace(12, 8);
        let mut runtime = Runtime::new(FuVariant::V3, 4).unwrap();
        let report = runtime.serve(&requests).unwrap();
        assert_eq!(report.outcomes().len(), 12);
        for (request, outcome) in requests.iter().zip(report.outcomes()) {
            let dfg = request.kernel.dfg(&LowerOptions::default()).unwrap();
            let expected = evaluate_stream(&dfg, request.workload.records()).unwrap();
            assert_eq!(outcome.outputs, expected, "request {}", request.id);
            assert_eq!(outcome.request_id, request.id);
            assert!(outcome.latency_us > 0.0);
        }
    }

    #[test]
    fn serve_is_deterministic_across_calls_and_policies_agree_functionally() {
        let requests = benchmark_trace(10, 6);
        let mut affinity = Runtime::new(FuVariant::V4, 4).unwrap();
        let mut round_robin = Runtime::new(FuVariant::V4, 4)
            .unwrap()
            .with_policy(DispatchPolicy::RoundRobin);
        let a1 = affinity.serve(&requests).unwrap();
        let a2 = affinity.serve(&requests).unwrap();
        let rr = round_robin.serve(&requests).unwrap();
        assert_eq!(a1.placement().assignments, a2.placement().assignments);
        assert_eq!(a1.metrics().makespan_us, a2.metrics().makespan_us);
        for (lhs, rhs) in a1.outcomes().iter().zip(rr.outcomes()) {
            assert_eq!(
                lhs.outputs, rhs.outputs,
                "placement must not change results"
            );
        }
    }

    #[test]
    fn affinity_spends_less_switch_time_than_round_robin_on_writeback_tiles() {
        // 3 tiles against a 4-kernel cycle, so the round-robin stride never
        // aligns with the kernel period and it swaps on nearly every request.
        let requests = benchmark_trace(32, 4);
        let mut affinity = Runtime::new(FuVariant::V3, 3).unwrap();
        let mut round_robin = Runtime::new(FuVariant::V3, 3)
            .unwrap()
            .with_policy(DispatchPolicy::RoundRobin);
        let a = affinity.serve(&requests).unwrap();
        let rr = round_robin.serve(&requests).unwrap();
        assert!(
            a.metrics().total_switch_us < rr.metrics().total_switch_us,
            "affinity {} us vs round-robin {} us",
            a.metrics().total_switch_us,
            rr.metrics().total_switch_us
        );
        assert!(a.metrics().switch_count < rr.metrics().switch_count);
    }

    #[test]
    fn feed_forward_pools_charge_pcap_scale_switches() {
        // On a V1 pool every kernel swap costs ~1 ms of PCAP time, so the
        // 4-kernel round-robin trace pays milliseconds of switching.
        let requests = benchmark_trace(8, 4);
        let mut runtime = Runtime::new(FuVariant::V1, 2)
            .unwrap()
            .with_policy(DispatchPolicy::RoundRobin);
        let report = runtime.serve(&requests).unwrap();
        assert!(
            report.metrics().total_switch_us > 1_000.0,
            "PCAP switches are on the millisecond scale, got {} us",
            report.metrics().total_switch_us
        );
        // The same trace on a V3 pool swaps in microseconds.
        let mut writeback = Runtime::new(FuVariant::V3, 2)
            .unwrap()
            .with_policy(DispatchPolicy::RoundRobin);
        let wb = writeback.serve(&requests).unwrap();
        assert!(wb.metrics().total_switch_us < 100.0);
        assert!(wb.metrics().total_switch_us > 0.0);
    }

    #[test]
    fn cache_compiles_each_kernel_once_per_serve() {
        let requests = benchmark_trace(16, 4);
        let mut runtime = Runtime::new(FuVariant::V4, 4).unwrap();
        let report = runtime.serve(&requests).unwrap();
        assert_eq!(report.metrics().cache.misses, 4, "4 distinct kernels");
        assert_eq!(report.metrics().cache.hits, 12);
        // A second serve of the same trace is all hits.
        let again = runtime.serve(&requests).unwrap();
        assert_eq!(again.metrics().cache.misses, 0);
        assert_eq!(again.metrics().cache.hits, 16);
    }

    #[test]
    fn metrics_account_every_request_and_tile() {
        let requests = benchmark_trace(20, 5);
        let mut runtime = Runtime::new(FuVariant::V5, 4).unwrap();
        let report = runtime.serve(&requests).unwrap();
        let metrics = report.metrics();
        assert_eq!(metrics.requests, 20);
        assert_eq!(metrics.invocations, 100);
        assert_eq!(metrics.tile_requests.iter().sum::<usize>(), 20);
        assert!(metrics.makespan_us > 0.0);
        assert!(metrics.requests_per_sec > 0.0);
        assert!(metrics.p50_latency_us <= metrics.p99_latency_us);
        assert!(metrics.p99_latency_us <= metrics.max_latency_us);
        assert!(metrics
            .tile_utilization
            .iter()
            .all(|u| (0.0..=1.0 + 1e-9).contains(u)));
    }

    #[test]
    fn changing_lower_options_invalidates_the_cache() {
        let spec = KernelSpec::from_benchmark(Benchmark::Gradient).unwrap();
        let requests = vec![Request::new(0, spec, Workload::ramp(5, 4))];
        let mut runtime = Runtime::new(FuVariant::V4, 1).unwrap();
        runtime.serve(&requests).unwrap();
        assert_eq!(runtime.cache().len(), 1);
        // The key does not encode lowering options, so swapping them must
        // drop the stale artifacts rather than serve them as hits.
        let mut runtime = runtime.with_lower_options(LowerOptions::default());
        assert!(runtime.cache().is_empty());
        let report = runtime.serve(&requests).unwrap();
        assert_eq!(report.metrics().cache.misses, 1);
    }

    #[test]
    fn deadlines_are_checked_against_completion() {
        let spec = KernelSpec::from_benchmark(Benchmark::Gradient).unwrap();
        let workload = Workload::random(5, 16, 3);
        let requests = vec![
            Request::new(0, spec.clone(), workload.clone()).with_deadline(1e9),
            Request::new(1, spec, workload).with_deadline(1e-9),
        ];
        let mut runtime = Runtime::new(FuVariant::V4, 1).unwrap();
        let report = runtime.serve(&requests).unwrap();
        assert!(!report.outcomes()[0].missed_deadline);
        assert!(report.outcomes()[1].missed_deadline);
        assert_eq!(report.metrics().deadline_misses, 1);
    }

    #[test]
    fn invalid_traces_are_rejected() {
        let mut runtime = Runtime::new(FuVariant::V4, 2).unwrap();
        assert!(matches!(runtime.serve(&[]), Err(RuntimeError::NoRequests)));
        let spec = KernelSpec::from_benchmark(Benchmark::Gradient).unwrap();
        let bad = Request::new(9, spec, Workload::ramp(5, 2)).at(f64::NAN);
        assert!(matches!(
            runtime.serve(&[bad]),
            Err(RuntimeError::InvalidArrival { request: 9, .. })
        ));
    }

    #[test]
    fn simulation_failures_surface_the_earliest_failing_request() {
        let spec = KernelSpec::from_benchmark(Benchmark::Gradient).unwrap();
        let good = Request::new(0, spec.clone(), Workload::ramp(5, 4));
        // Gradient takes 5 inputs; a 2-wide record is malformed.
        let bad = Request::new(1, spec, Workload::ramp(2, 4));
        let mut runtime = Runtime::new(FuVariant::V4, 2).unwrap();
        assert!(matches!(
            runtime.serve(&[good, bad]),
            Err(RuntimeError::Sim(_))
        ));
    }

    #[test]
    fn random_workloads_are_deterministic_per_seed() {
        // The dispatcher and trace builders rely on this reproducibility.
        assert_eq!(Workload::random(4, 32, 11), Workload::random(4, 32, 11));
        assert_ne!(Workload::random(4, 32, 11), Workload::random(4, 32, 12));
    }
}
