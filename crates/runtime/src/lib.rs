//! # overlay-runtime — an online multi-tile serving runtime for the TM overlay
//!
//! The paper's Sec. III-A.3 proposes replicating depth-8 write-back overlays
//! into NoC-connected *tiles*, and Sec. V shows their killer feature: a
//! ~0.25 µs hardware context switch (instruction reload) against ~1 ms of
//! PCAP partial reconfiguration for the feed-forward overlays. This crate
//! turns those models into an **online, event-driven** serving system whose
//! host-side hot path stays O(log n) per event as the pool and the queues
//! grow:
//!
//! * [`Submitter`] — streaming request ingestion over a bounded channel:
//!   [`Runtime::serve_stream`] accepts requests as they are produced, with
//!   backpressure when the ingest buffer fills and an admission-control
//!   reject path when tile queues overflow. Requests stream as
//!   [`Arc<Request>`] — no workload is ever deep-cloned on the way in;
//! * a virtual-time **event loop** ([`event`]) — every dispatch decision
//!   happens at an arrival or tile-free event against live per-tile queue
//!   state, never with knowledge of the future trace;
//! * [`Dispatcher`] — context-switch-aware placement and deadline-aware
//!   queue ordering: [`DispatchPolicy::KernelAffinity`] charges the
//!   [`overlay_arch::ReconfigModel`] swap cost (µs instruction reload for
//!   V3–V5, ms PCAP for `[14]`/V1/V2) whenever a tile must change kernels;
//!   [`DispatchPolicy::EarliestDeadlineFirst`] and
//!   [`DispatchPolicy::SlackAware`] drain tile queues by deadline urgency.
//!   Placement consults the [`TilePool`]'s **residency index** in O(log n)
//!   instead of scanning every tile, and queue draining pops from per-tile
//!   ordered structures instead of scanning every waiter — with
//!   [`ScanMode::LinearReference`] retaining the original scans as an
//!   equivalence oracle and benchmark baseline;
//! * [`TilePool`] — N replicated tiles (from [`overlay_arch::Tile`] /
//!   [`overlay_arch::NocConfig`]), each hosting one resident kernel plus a
//!   live queue, indexed by residency and backlog;
//! * [`KernelCache`] — an LRU over compiled kernels keyed by source hash +
//!   variant + depth, so each distinct kernel compiles once per trace — and
//!   a [`SimMemo`] over finished simulation runs keyed by (kernel,
//!   workload digest), so a repeated tenant request skips the functional
//!   simulation entirely;
//! * parallel functional execution — cycle-accurate simulations run on a
//!   pool of host worker threads wrapping [`overlay_sim::OverlaySimulator`],
//!   each fed by its own job channel (no contended receiver lock), with
//!   identical in-flight requests deduplicated onto one run;
//! * [`RuntimeMetrics`] — requests/s, p50/p99 modeled latency, per-tile
//!   utilization, cache and memo hit rates, context-switch totals, queue
//!   depths, admission rejects, deadline miss rates and the host-side event
//!   count;
//! * the **control plane** ([`control`]) — optional same-kernel batching
//!   over the tile-free queue drain ([`BatchConfig`],
//!   [`Runtime::with_batching`]) and, on a [`Cluster`], rate-driven kernel
//!   replication ahead of demand ([`ReplicationConfig`],
//!   [`Cluster::with_replication`]). Both are off by default and leave the
//!   runtime bitwise identical to the un-batched event loop when off.
//!
//! # Example
//!
//! ```
//! use overlay_runtime::{DispatchPolicy, KernelSpec, Request, Runtime};
//! use overlay_arch::FuVariant;
//! use overlay_sim::Workload;
//!
//! # fn main() -> Result<(), overlay_runtime::RuntimeError> {
//! let mut runtime = Runtime::new(FuVariant::V4, 2)?
//!     .with_policy(DispatchPolicy::EarliestDeadlineFirst);
//!
//! let saxpy = KernelSpec::from_source("saxpy", "kernel saxpy(a, x, y) { out r = a * x + y; }");
//! let poly = KernelSpec::from_source("poly", "kernel poly(x) { out y = (x * x + 3) * x; }");
//!
//! // Requests are *streamed* into the runtime: the dispatcher sees each one
//! // only when it arrives on the virtual timeline.
//! let report = runtime.serve_stream(|submitter| {
//!     for i in 0..8u64 {
//!         let (kernel, inputs) = if i % 2 == 0 { (saxpy.clone(), 3) } else { (poly.clone(), 1) };
//!         let request = Request::new(i, kernel, Workload::ramp(inputs, 16))
//!             .at(i as f64)
//!             .with_deadline(i as f64 + 500.0);
//!         submitter.submit(request).expect("serve loop is live");
//!     }
//! })?;
//!
//! assert_eq!(report.outcomes().len(), 8);
//! // Each kernel compiled once; every later request hit the cache.
//! assert_eq!(report.metrics().cache.misses, 2);
//! assert_eq!(report.metrics().cache.hits, 6);
//! // Each (kernel, workload) simulated once; the repeats were memoized.
//! assert_eq!(report.metrics().sim_memo.misses, 2);
//! assert_eq!(report.metrics().sim_memo.hits, 6);
//! // Nothing was turned away and the generous deadlines were all met.
//! assert_eq!(report.metrics().rejects, 0);
//! assert_eq!(report.metrics().deadline_misses, 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod cluster;
pub mod control;
pub mod dispatch;
pub mod error;
pub mod event;
pub mod fault;
pub mod metrics;
pub mod obs;
pub mod pool;
pub mod request;
pub mod route;
pub mod session;
pub mod submit;

pub use cache::{CacheStats, KernelCache, KernelKey, SimKey, SimMemo};
pub use obs::{
    explain, Attribution, AttributionReport, BurnAlert, BurnSample, ClassWindow, LogHistogram,
    ProfileStats, SloConfig, SloObjective, SloReport, SloStatus, SpanKind, TelemetryConfig,
    TimeSeries, Trace, TraceConfig, TraceEvent, WindowStats,
};

use cache::FnvHashMap;
pub use cluster::{Cluster, ClusterReport, Device};
pub use control::{BatchConfig, RateEstimator, ReplicationConfig};
pub use dispatch::{DispatchPolicy, DispatchRequest, Dispatcher, ScanMode};
pub use error::RuntimeError;
pub use fault::scenario::{FlashCrowd, Scenario, ScenarioArrival, ScenarioConfig};
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use metrics::{
    BatchStats, ClassMetrics, DeviceMetrics, ReplicationStats, RuntimeMetrics, StageMetrics,
};
pub use pool::{ChargeOutcome, TilePool, TileState};
pub use request::{KernelSpec, Request};
pub use route::{RoutePolicy, TransferModel};
pub use session::{
    PipelineOutcome, PipelineReport, PipelineRequest, PipelineStage, ReorderBuffer, Session,
    SloClass,
};
pub use submit::{SubmitError, Submitter};

use std::collections::VecDeque;
use std::sync::{mpsc, Arc};
use std::thread;

use control::Batcher;
use dispatch::TileQueue;
use event::{EventKind, EventQueue};
use overlay_arch::{FuVariant, NocConfig, OverlayConfig, ReconfigModel, TileComposition};
use overlay_dfg::Value;
use overlay_frontend::LowerOptions;
use overlay_scheduler::{generate_program, schedule, CompiledKernel};
use overlay_sim::{OverlaySimulator, SimError, SimMetrics, SimRun};

/// What happened to one served request: where it ran, what it produced and
/// the modeled timing it experienced.
///
/// Outcomes are allocation-light by construction: the kernel name is shared
/// with the request's [`KernelSpec`] and the functional outputs are shared
/// with the (possibly memoized) simulation run — recording an outcome never
/// deep-copies either.
#[derive(Debug, Clone)]
pub struct RequestOutcome {
    /// The caller-chosen request id.
    pub request_id: u64,
    /// The kernel name (shared with the request's spec).
    pub kernel: Arc<str>,
    /// The device that served the request (always 0 for a single
    /// [`Runtime`]; the routing decision for a [`Cluster`]).
    pub device: usize,
    /// The tile that served the request (device-local index).
    pub tile: usize,
    /// The simulation run behind this outcome (shared, possibly memoized).
    run: Arc<SimRun>,
    /// The simulator's cycle-level metrics for this request.
    pub sim: SimMetrics,
    /// When queueing ended and the switch/execution began, microseconds.
    pub start_us: f64,
    /// Time spent waiting in the tile queue (start − arrival), microseconds.
    pub queued_us: f64,
    /// When the last output left the NoC, microseconds.
    pub completion_us: f64,
    /// Completion minus arrival, microseconds.
    pub latency_us: f64,
    /// Whether serving this request required a hardware context switch.
    pub switched: bool,
    /// The request's absolute deadline, if it carried one.
    pub deadline_us: Option<f64>,
    /// Whether a deadline was set and missed.
    pub missed_deadline: bool,
}

impl RequestOutcome {
    /// Functional outputs, one record per invocation — a view into the
    /// shared simulation run.
    pub fn outputs(&self) -> &[Vec<Value>] {
        self.run.outputs()
    }
}

/// A request turned away by admission control: it was never placed on a
/// tile and produced no outputs.
#[derive(Debug, Clone, PartialEq)]
pub struct RejectedRequest {
    /// The caller-chosen request id.
    pub id: u64,
    /// The kernel name (shared with the request's spec).
    pub kernel: Arc<str>,
    /// When the request arrived, microseconds.
    pub arrival_us: f64,
    /// The deadline the request carried, if any — shed deadline work is
    /// reported in [`RuntimeMetrics::rejected_deadlines`], not as a miss.
    pub deadline_us: Option<f64>,
}

/// The result of one serve: per-request outcomes (in submission order),
/// admission rejects and aggregate metrics.
#[derive(Debug, Clone)]
pub struct ServeReport {
    policy: DispatchPolicy,
    outcomes: Vec<RequestOutcome>,
    rejected: Vec<RejectedRequest>,
    metrics: RuntimeMetrics,
    trace: Option<obs::Trace>,
    profile: Option<obs::ProfileStats>,
    telemetry: Option<obs::TimeSeries>,
    slo: Option<obs::SloReport>,
}

impl ServeReport {
    /// Per-request outcomes of every *admitted* request, in submission order.
    pub fn outcomes(&self) -> &[RequestOutcome] {
        &self.outcomes
    }

    /// Requests rejected by admission control, in submission order.
    pub fn rejected(&self) -> &[RejectedRequest] {
        &self.rejected
    }

    /// Aggregate serving metrics.
    pub fn metrics(&self) -> &RuntimeMetrics {
        &self.metrics
    }

    /// The dispatch policy that produced this report.
    pub fn policy(&self) -> DispatchPolicy {
        self.policy
    }

    /// The recorded request-span trace, when the serve ran with
    /// [`Runtime::with_tracing`] enabled.
    pub fn trace(&self) -> Option<&obs::Trace> {
        self.trace.as_ref()
    }

    /// The host-time stage attribution, when the serve ran with
    /// [`Runtime::with_profiling`] enabled.
    pub fn profile(&self) -> Option<&obs::ProfileStats> {
        self.profile.as_ref()
    }

    /// The windowed telemetry time-series, when the serve ran with
    /// [`Runtime::with_telemetry`] enabled.
    pub fn telemetry(&self) -> Option<&obs::TimeSeries> {
        self.telemetry.as_ref()
    }

    /// The SLO burn-rate tracking, when the serve ran with both
    /// [`Runtime::with_telemetry`] and [`Runtime::with_slo`] enabled.
    pub fn slo(&self) -> Option<&obs::SloReport> {
        self.slo.as_ref()
    }
}

/// Per-serve context shared by every request's preparation, including the
/// per-kernel derived timing figures (operating frequency, switch cost,
/// steady-state II) so they are computed once per distinct kernel rather
/// than once per request.
pub(crate) struct PrepContext {
    variant: FuVariant,
    writeback: bool,
    depth: usize,
    tile_overlay: Option<OverlayConfig>,
    derived: FnvHashMap<KernelKey, DerivedTiming>,
}

impl PrepContext {
    /// The shared per-serve preparation facts for `pool` (every device of a
    /// cluster replicates the same tile, so one context serves them all).
    pub(crate) fn for_pool(pool: &TilePool) -> Result<Self, RuntimeError> {
        let variant = pool.variant();
        let writeback = variant.has_writeback();
        Ok(PrepContext {
            variant,
            writeback,
            depth: if writeback { pool.logical_depth() } else { 0 },
            tile_overlay: pool.overlay_config()?,
            derived: FnvHashMap::default(),
        })
    }
}

/// Kernel-dependent timing facts reused across every request for that
/// kernel within one serve.
#[derive(Clone, Copy)]
struct DerivedTiming {
    fmax_mhz: f64,
    switch_us: f64,
    ii: f64,
    fill_cycles: f64,
    image_bytes: usize,
}

/// Compiles (via `cache`) and derives the timing figures one request needs
/// before it can be dispatched — including the [`DispatchRequest`] view
/// every later event reuses and the [`SimKey`] the memo answers.
/// Kernel-dependent timing (frequency, switch cost, II, image size) is
/// computed once per distinct kernel and reused from the context. Shared by
/// [`Runtime`] and [`Cluster`] (where `cache` is the kernel's home-device
/// store).
pub(crate) fn prepare_request(
    cache: &mut KernelCache,
    lower: &LowerOptions,
    reconfig: &ReconfigModel,
    ctx: &mut PrepContext,
    request: Arc<Request>,
) -> Result<InFlight, RuntimeError> {
    let key = KernelKey {
        fingerprint: request.kernel.fingerprint(),
        variant: ctx.variant,
        depth: ctx.depth,
    };
    let spec = &request.kernel;
    let writeback = ctx.writeback;
    let depth = ctx.depth;
    let compiled = cache.get_or_compile(key, || {
        let dfg = spec.dfg(lower)?;
        let fixed_depth = writeback.then_some(depth);
        let stages = schedule(&dfg, ctx.variant, fixed_depth)?;
        Ok(generate_program(&dfg, &stages, ctx.variant)?)
    })?;
    let timing = match ctx.derived.get(&key) {
        Some(&timing) => timing,
        None => {
            let config_bits = compiled.program.config_bits();
            let (fmax_mhz, switch_us) = match &ctx.tile_overlay {
                // Write-back tile: fixed overlay, instruction reload only.
                Some(config) => (
                    config.fmax_mhz(),
                    reconfig
                        .program_only_switch(ctx.variant, config_bits)
                        .total_us(),
                ),
                // Feed-forward tile: the overlay is rebuilt to the
                // kernel's depth, so a swap pays PCAP reconfiguration.
                None => {
                    let config = OverlayConfig::new(ctx.variant, compiled.num_fus())?;
                    (
                        config.fmax_mhz(),
                        reconfig.full_switch(&config, config_bits).total_us(),
                    )
                }
            };
            let timing = DerivedTiming {
                fmax_mhz,
                switch_us,
                ii: compiled.ii,
                fill_cycles: (4 * compiled.num_fus()) as f64,
                image_bytes: compiled.program.config_bytes(),
            };
            ctx.derived.insert(key, timing);
            timing
        }
    };
    // Planning estimate: steady-state II per invocation plus a
    // pipeline-fill allowance, at the overlay's operating frequency.
    let est_exec_us =
        (timing.ii * request.workload.len() as f64 + timing.fill_cycles) / timing.fmax_mhz;
    let sim_key = SimKey {
        kernel: key,
        workload: request.workload_digest(),
    };
    let view = DispatchRequest {
        key,
        est_exec_us,
        switch_us: timing.switch_us,
        deadline_us: request.deadline_us,
    };
    Ok(InFlight {
        request,
        sim_key,
        compiled,
        fmax_mhz: timing.fmax_mhz,
        image_bytes: timing.image_bytes,
        view,
    })
}

/// Everything the loop derives for a request when it is streamed in: the
/// dispatch view (kernel identity + modeled costs) is computed once here and
/// reused at every event the request participates in.
pub(crate) struct InFlight {
    pub(crate) request: Arc<Request>,
    pub(crate) sim_key: SimKey,
    pub(crate) compiled: Arc<CompiledKernel>,
    pub(crate) fmax_mhz: f64,
    /// The compiled image size the transfer model charges for moving this
    /// kernel between devices.
    pub(crate) image_bytes: usize,
    pub(crate) view: DispatchRequest,
}

/// How [`SimResults::source`] satisfied a request's simulation — the memo
/// counter events tracing records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SimSourced {
    /// Joined an identical in-flight run.
    Joined,
    /// Answered from the memo.
    MemoHit,
    /// Spawned a fresh simulation job.
    Spawned,
}

/// Records the lifecycle spans of one started request onto its tile track:
/// queue wait (arrival → start), image acquisition and context switch when
/// paid, the run itself, batch membership and the commit instant. The span
/// durations sum to the request's reported `latency_us` by construction —
/// the reconciliation the observability test suite audits. Shared by the
/// [`Runtime`] and [`Cluster`] start paths (`acquire` is the cluster's
/// image-acquisition charge: duration, source label, bytes).
pub(crate) fn record_request_spans(
    recorder: &mut obs::TraceRecorder,
    place: (usize, usize),
    info: &InFlight,
    charged: &ChargeOutcome,
    acquire: Option<(f64, &'static str, u64)>,
    activation_us: f64,
    run_len: usize,
) {
    let (device, tile) = place;
    let request = &info.request;
    let span = |time_us: f64, dur_us: f64, kind: obs::SpanKind| obs::TraceEvent {
        time_us,
        dur_us,
        request_id: Some(request.id),
        device,
        tile: Some(tile),
        kind,
    };
    let start = charged.start_us;
    // The always-adjacent pairs (queue wait + batch membership, run +
    // commit) go through the recorder's fused capture paths: half the ring
    // pushes for the per-request burst, split back apart at decode.
    recorder.queue_wait_batch(
        request.arrival_us,
        start - request.arrival_us,
        request.id,
        device,
        tile,
        run_len as u64,
    );
    let mut cursor = start;
    if let Some((acquire_us, source, bytes)) = acquire {
        if acquire_us > 0.0 {
            recorder.record(span(
                cursor,
                acquire_us,
                obs::SpanKind::Acquire { source, bytes },
            ));
            cursor += acquire_us;
        }
    }
    if charged.switched {
        if activation_us > 0.0 {
            recorder.record(span(cursor, activation_us, obs::SpanKind::Activation));
            cursor += activation_us;
        }
        let switch_us = info.view.switch_us;
        recorder.record(span(cursor, switch_us, obs::SpanKind::ContextSwitch));
        cursor += switch_us;
    }
    recorder.run_commit(
        cursor,
        charged.completion_us - cursor,
        charged.completion_us,
        request.id,
        device,
        tile,
    );
}

/// A functional-simulation job handed to a worker.
pub(crate) struct SimJob {
    pub(crate) index: usize,
    pub(crate) compiled: Arc<CompiledKernel>,
    pub(crate) request: Arc<Request>,
}

/// Sim results as the event loop consumes them: jobs are spawned eagerly at
/// admission (deduplicated by [`SimKey`] against in-flight runs while
/// memoization is enabled), dealt to the least-loaded worker, returned in
/// any order, and the loop blocks for a specific index only when a tile is
/// about to execute that request.
pub(crate) struct SimResults<'a> {
    rx: &'a mpsc::Receiver<(usize, Result<SimRun, SimError>)>,
    /// One slot per intake index — no hashing on the hot path.
    ready: Vec<Option<Result<Arc<SimRun>, SimError>>>,
    /// Intake indices awaiting each in-flight simulation; the first entry is
    /// the index the job was spawned under. Unused when `dedup` is off.
    pending: FnvHashMap<SimKey, Vec<usize>>,
    /// Whether identical in-flight requests join one simulation. Follows the
    /// memo: a disabled memo (capacity 0) means *every* request simulates.
    dedup: bool,
    /// Jobs dispatched to and not yet returned by each worker — new jobs go
    /// to the least-loaded worker so one long simulation does not pin
    /// later jobs behind it on a single channel.
    outstanding: Vec<u32>,
    /// Which worker each spawned intake index was dealt to.
    worker_of: FnvHashMap<usize, usize>,
}

impl<'a> SimResults<'a> {
    /// A fresh result tracker over `workers` job channels draining `rx`.
    pub(crate) fn new(
        rx: &'a mpsc::Receiver<(usize, Result<SimRun, SimError>)>,
        workers: usize,
        dedup: bool,
    ) -> Self {
        SimResults {
            rx,
            ready: Vec::new(),
            pending: FnvHashMap::default(),
            dedup,
            outstanding: vec![0; workers],
            worker_of: FnvHashMap::default(),
        }
    }

    /// Grows the per-intake slot table by one (a request was streamed in).
    pub(crate) fn push_slot(&mut self) {
        self.ready.push(None);
    }

    /// Sources the (placement-independent) simulation for an admitted
    /// request `index`: joins an identical in-flight run, answers from the
    /// memo, or spawns a job on the least-loaded worker — exactly one of
    /// the three, with the memo counters tracking which. Returns which path
    /// satisfied the request so tracing can emit the matching counter event.
    pub(crate) fn source(
        &mut self,
        index: usize,
        info: &InFlight,
        memo: &mut SimMemo,
        jobs: &[mpsc::Sender<SimJob>],
    ) -> SimSourced {
        let joined = self.dedup
            && match self.pending.get_mut(&info.sim_key) {
                Some(waiters) => {
                    waiters.push(index);
                    memo.note_shared_hit();
                    true
                }
                None => false,
            };
        if joined {
            // An identical simulation is already in flight.
            SimSourced::Joined
        } else if let Some(run) = memo.get(&info.sim_key) {
            self.ready[index] = Some(Ok(run));
            SimSourced::MemoHit
        } else {
            if self.dedup {
                self.pending.insert(info.sim_key, vec![index]);
            }
            memo.note_miss();
            let worker = self.least_loaded();
            self.note_dispatched(worker, index);
            jobs[worker]
                .send(SimJob {
                    index,
                    compiled: Arc::clone(&info.compiled),
                    request: Arc::clone(&info.request),
                })
                .expect("sim workers outlive the event loop");
            SimSourced::Spawned
        }
    }

    /// Puts a consumed run back into `index`'s slot — fault injection
    /// abandons a started request and requeues it, and the simulation
    /// (placement-independent) must be waiting when the retry starts.
    pub(crate) fn restore(&mut self, index: usize, run: Arc<SimRun>) {
        self.ready[index] = Some(Ok(run));
    }

    /// The worker with the fewest outstanding jobs (ties to the lowest id).
    fn least_loaded(&self) -> usize {
        self.outstanding
            .iter()
            .enumerate()
            .min_by_key(|&(_, &load)| load)
            .map(|(worker, _)| worker)
            .expect("at least one sim worker exists")
    }

    /// Records that `index`'s job was dealt to `worker`.
    fn note_dispatched(&mut self, worker: usize, index: usize) {
        self.outstanding[worker] += 1;
        self.worker_of.insert(index, worker);
    }

    /// Blocks until the run for `index` is available, fanning every received
    /// result out to all requests awaiting the same simulation and memoizing
    /// successful runs.
    pub(crate) fn take(
        &mut self,
        index: usize,
        intake: &[InFlight],
        memo: &mut SimMemo,
    ) -> Result<Arc<SimRun>, RuntimeError> {
        loop {
            if let Some(result) = self.ready[index].take() {
                return result.map_err(RuntimeError::from);
            }
            let (done, run) = self
                .rx
                .recv()
                .expect("sim worker pool terminated while results were outstanding");
            let worker = self
                .worker_of
                .remove(&done)
                .expect("every result matches a dispatched job");
            self.outstanding[worker] -= 1;
            if !self.dedup {
                self.ready[done] = Some(run.map(Arc::new));
                continue;
            }
            let key = intake[done].sim_key;
            let waiters = self
                .pending
                .remove(&key)
                .expect("every spawned job has waiters");
            match run {
                Ok(run) => {
                    let run = Arc::new(run);
                    memo.insert(key, Arc::clone(&run));
                    for waiter in waiters {
                        self.ready[waiter] = Some(Ok(Arc::clone(&run)));
                    }
                }
                Err(err) => {
                    for waiter in waiters {
                        self.ready[waiter] = Some(Err(err.clone()));
                    }
                }
            }
        }
    }
}

/// Where the event loop pulls submissions from: a live bounded channel
/// (streaming serves) or the pre-collected trace itself (batch serves skip
/// the channel and its per-request synchronization entirely).
pub(crate) enum Ingest {
    Stream(mpsc::Receiver<Arc<Request>>),
    Batch(std::vec::IntoIter<Request>),
}

impl Ingest {
    /// Blocking pull of the next submission; `None` means the trace is
    /// complete.
    pub(crate) fn recv(&mut self) -> Option<Arc<Request>> {
        match self {
            Ingest::Stream(rx) => rx.recv().ok(),
            Ingest::Batch(iter) => iter.next().map(Arc::new),
        }
    }

    /// Non-blocking pull of an already-available submission, letting the
    /// loop drain the stream buffer in batches instead of paying one
    /// channel synchronization per request. Batch ingest always answers
    /// `None`: with no channel to amortize, pulling strictly by the horizon
    /// rule keeps the event heap small.
    pub(crate) fn try_recv(&mut self) -> Option<Arc<Request>> {
        match self {
            Ingest::Stream(rx) => rx.try_recv().ok(),
            Ingest::Batch(_) => None,
        }
    }
}

/// The horizon-ruled submission pull shared by the [`Runtime`] and
/// [`Cluster`] event loops: requests are pulled (and prepared) until the
/// earliest pending event is at or before the horizon and therefore safe to
/// fire. After each blocking pull, whatever else is already buffered is
/// drained in the same pass — pulling ahead of the horizon is always sound
/// (it only schedules future arrival events) and amortizes the channel
/// synchronization across a whole burst.
///
/// Arrival validation (finite, non-negative, non-decreasing) lives here, in
/// exactly one place.
pub(crate) struct SubmissionPull {
    pub(crate) horizon_us: f64,
    pub(crate) ingest_open: bool,
}

impl SubmissionPull {
    pub(crate) fn new() -> Self {
        SubmissionPull {
            horizon_us: 0.0,
            ingest_open: true,
        }
    }

    /// Pulls until an event at or before the horizon is pending (or the
    /// ingest closes, setting the horizon to ∞). `prepare` compiles one
    /// submission into its [`InFlight`] record; `grow_slots` extends the
    /// caller's per-intake side tables by one before the record is pushed
    /// (and, with tracing on, records the submission span — which is why it
    /// sees the prepared record).
    pub(crate) fn pull<P, G>(
        &mut self,
        ingest: &mut Ingest,
        events: &mut EventQueue,
        intake: &mut Vec<InFlight>,
        mut prepare: P,
        mut grow_slots: G,
    ) -> Result<(), RuntimeError>
    where
        P: FnMut(Arc<Request>) -> Result<InFlight, RuntimeError>,
        G: FnMut(&InFlight),
    {
        while self.ingest_open
            && events
                .peek_time_us()
                .is_none_or(|time| time > self.horizon_us)
        {
            let Some(request) = ingest.recv() else {
                // Every submitter is gone: the trace is complete.
                self.ingest_open = false;
                self.horizon_us = f64::INFINITY;
                break;
            };
            let mut next = Some(request);
            while let Some(request) = next.take() {
                let arrival_us = request.arrival_us;
                if !arrival_us.is_finite() || arrival_us < 0.0 {
                    return Err(RuntimeError::InvalidArrival {
                        request: request.id,
                        arrival_us,
                    });
                }
                if arrival_us < self.horizon_us {
                    return Err(RuntimeError::OutOfOrderArrival {
                        request: request.id,
                        arrival_us,
                        horizon_us: self.horizon_us,
                    });
                }
                self.horizon_us = arrival_us;
                let inflight = prepare(request)?;
                let index = intake.len();
                // Arrivals enter in non-decreasing time order: the
                // monotone lane appends instead of heap-sifting.
                events.push_monotone(arrival_us, EventKind::Arrival { index });
                grow_slots(&inflight);
                intake.push(inflight);
                next = ingest.try_recv();
            }
        }
        Ok(())
    }
}

/// The per-tile waiting queues, in the shape the active [`ScanMode`] needs:
/// ordered index structures, or the plain FIFO deques the linear-reference
/// scan-and-remove path works over.
enum TileQueues {
    Indexed(Vec<TileQueue>),
    Linear(Vec<VecDeque<usize>>),
}

impl TileQueues {
    fn is_empty(&self, tile: usize) -> bool {
        match self {
            TileQueues::Indexed(queues) => queues[tile].is_empty(),
            TileQueues::Linear(queues) => queues[tile].is_empty(),
        }
    }
}

/// Mutable event-loop state, separate from the `Runtime` so placement (on
/// `self`) and bookkeeping borrows stay disjoint.
struct OnlineState<'a> {
    queues: TileQueues,
    /// Per intake index: logically removed from its tile queue (the ordered
    /// structures drop flagged entries lazily).
    taken: Vec<bool>,
    events: EventQueue,
    outcome_slots: Vec<Option<RequestOutcome>>,
    rejected: Vec<RejectedRequest>,
    sim: SimResults<'a>,
    /// The same-kernel batching layer over the tile-free queue drain (a
    /// no-op at the default `max_batch = 1`).
    batcher: Batcher,
    peak_queue_depth: usize,
    queue_area_us: f64,
    last_event_us: f64,
    /// Request-span recorder (inert under the default disabled config).
    recorder: obs::TraceRecorder,
    /// Host-time stage timers (inert unless profiling was enabled).
    profiler: obs::StageProfiler,
    /// Online latency histogram, recorded as requests complete.
    latency_hist: obs::LogHistogram,
    /// Online queue-depth histogram, sampled at every event-loop step.
    queue_depth_hist: obs::LogHistogram,
    /// Windowed telemetry partitions (inert under the default disabled
    /// config): the single device lane and the queue-integral series.
    lane_series: obs::LaneSeries,
    global_series: obs::GlobalSeries,
}

/// What the event loop hands back for aggregation.
struct LoopOutput {
    outcomes: Vec<RequestOutcome>,
    rejected: Vec<RejectedRequest>,
    peak_queue_depth: usize,
    queue_area_us: f64,
    events_fired: u64,
    batch: metrics::BatchStats,
    trace: Option<obs::Trace>,
    profile: Option<obs::ProfileStats>,
    latency_hist: obs::LogHistogram,
    queue_depth_hist: obs::LogHistogram,
    telemetry: Option<obs::TimeSeries>,
    slo: Option<obs::SloReport>,
}

/// An online multi-tile serving runtime over one overlay variant.
///
/// See the [crate-level documentation](crate) for the moving parts and an
/// end-to-end example.
#[derive(Debug)]
pub struct Runtime {
    pool: TilePool,
    dispatcher: Dispatcher,
    cache: KernelCache,
    sim_memo: SimMemo,
    reconfig: ReconfigModel,
    lower: LowerOptions,
    ingest_capacity: usize,
    admission_limit: usize,
    batching: BatchConfig,
    tracing: obs::TraceConfig,
    /// Recorder kept across serves so the ring's backing allocation (and
    /// its warmed pages) amortize instead of being re-faulted per serve.
    /// Swapped into the event loop's state and back out at serve end.
    trace_scratch: obs::TraceRecorder,
    profiling: bool,
    telemetry: obs::TelemetryConfig,
    slo: obs::SloConfig,
}

impl Runtime {
    /// Default capacity of the kernel cache.
    pub const DEFAULT_CACHE_CAPACITY: usize = 64;

    /// Default capacity of the simulation memo.
    pub const DEFAULT_SIM_MEMO_CAPACITY: usize = 1024;

    /// Default bound of the streaming ingest channel.
    pub const DEFAULT_INGEST_CAPACITY: usize = 64;

    /// Host worker threads running functional simulations are capped here.
    pub(crate) const MAX_SIM_WORKERS: usize = 8;

    /// A runtime of `tiles` parallel-composition tiles of `variant` on a
    /// single-row NoC, using kernel-affinity dispatch.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::EmptyPool`] when `tiles` is 0.
    pub fn new(variant: FuVariant, tiles: usize) -> Result<Self, RuntimeError> {
        let pool = TilePool::with_tiles(variant, TileComposition::Parallel, tiles)?;
        Ok(Self::from_pool(pool))
    }

    /// A runtime over an explicit NoC layout (rows × cols of a chosen tile).
    pub fn from_noc(noc: NocConfig) -> Self {
        Self::from_pool(TilePool::new(noc))
    }

    fn from_pool(pool: TilePool) -> Self {
        Runtime {
            pool,
            dispatcher: Dispatcher::default(),
            cache: KernelCache::new(Self::DEFAULT_CACHE_CAPACITY)
                .expect("default capacity is non-zero"),
            sim_memo: SimMemo::new(Self::DEFAULT_SIM_MEMO_CAPACITY),
            reconfig: ReconfigModel::new(),
            lower: LowerOptions::default(),
            ingest_capacity: Self::DEFAULT_INGEST_CAPACITY,
            admission_limit: usize::MAX,
            batching: BatchConfig::disabled(),
            tracing: obs::TraceConfig::disabled(),
            trace_scratch: obs::TraceRecorder::new(obs::TraceConfig::disabled()),
            profiling: false,
            telemetry: obs::TelemetryConfig::disabled(),
            slo: obs::SloConfig::disabled(),
        }
    }

    /// Sets the dispatch policy.
    #[must_use]
    pub fn with_policy(mut self, policy: DispatchPolicy) -> Self {
        let scan = self.dispatcher.scan_mode();
        self.dispatcher = Dispatcher::new(policy).with_scan_mode(scan);
        self
    }

    /// Sets the scan mode: [`ScanMode::Indexed`] (the default) answers
    /// placement and queue ordering from incremental indexes;
    /// [`ScanMode::LinearReference`] retains the original per-event scans as
    /// an equivalence oracle and benchmark baseline. Both modes make
    /// identical decisions on every trace.
    #[must_use]
    pub fn with_scan_mode(mut self, scan: ScanMode) -> Self {
        self.dispatcher = self.dispatcher.with_scan_mode(scan);
        self.pool.set_indexing(scan == ScanMode::Indexed);
        self
    }

    /// Replaces the kernel cache with one of `capacity` entries.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::ZeroCacheCapacity`] when `capacity` is 0.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Result<Self, RuntimeError> {
        self.cache = KernelCache::new(capacity)?;
        Ok(self)
    }

    /// Replaces the simulation memo with one of `capacity` entries.
    /// A capacity of 0 disables memoization *and* in-flight deduplication —
    /// every request simulates.
    #[must_use]
    pub fn with_sim_memo_capacity(mut self, capacity: usize) -> Self {
        self.sim_memo = SimMemo::new(capacity);
        self
    }

    /// Sets the bound of the streaming ingest channel (`0` makes every
    /// [`Submitter::submit`] rendezvous with the event loop).
    #[must_use]
    pub fn with_ingest_capacity(mut self, capacity: usize) -> Self {
        self.ingest_capacity = capacity;
        self
    }

    /// Sets the admission-control limit on *waiting* requests: an arrival
    /// that would have to queue while this many requests are already
    /// waiting across all tiles is rejected. An arrival is always admitted
    /// when the tile the dispatcher places it on can start it immediately —
    /// note the placement decision comes first, so a policy that prefers
    /// waiting for a warm tile over an idle-but-cold one (e.g. affinity on
    /// a PCAP pool) can still see its request rejected while another tile
    /// sits idle. Defaults to unlimited.
    #[must_use]
    pub fn with_admission_limit(mut self, limit: usize) -> Self {
        self.admission_limit = limit;
        self
    }

    /// Overrides the reconfiguration timing model.
    #[must_use]
    pub fn with_reconfig(mut self, model: ReconfigModel) -> Self {
        self.reconfig = model;
        self
    }

    /// Configures the same-kernel batching layer: when a tile frees, up to
    /// [`BatchConfig::max_batch`] consecutive runs of the resident kernel
    /// may jump the dispatch policy's queue order (never past the staleness
    /// bound, and never when a bypassed deadline would become infeasible).
    /// The default [`BatchConfig::disabled`] leaves every decision to the
    /// dispatch policy — bitwise identical to the un-batched runtime.
    #[must_use]
    pub fn with_batching(mut self, config: BatchConfig) -> Self {
        self.batching = config;
        self
    }

    /// Configures request-span tracing: every serve records its lifecycle
    /// spans into a bounded drop-oldest ring and hands the completed
    /// [`Trace`](obs::Trace) back on the report. The default
    /// [`TraceConfig::disabled`](obs::TraceConfig::disabled) records nothing
    /// and leaves the serve bitwise identical to an untraced one.
    #[must_use]
    pub fn with_tracing(mut self, config: obs::TraceConfig) -> Self {
        self.tracing = config;
        self.trace_scratch = obs::TraceRecorder::new(config);
        self
    }

    /// Enables the host-time hot-path profiler: the serve attributes its
    /// wall-clock nanoseconds to scan/route/sim/memo/bookkeeping stages and
    /// reports [`ProfileStats`](obs::ProfileStats). Off (the default) no
    /// clock is ever read on the hot path.
    #[must_use]
    pub fn with_profiling(mut self, enabled: bool) -> Self {
        self.profiling = enabled;
        self
    }

    /// Configures windowed telemetry: the serve accumulates a per-window
    /// [`TimeSeries`](obs::TimeSeries) (throughput, miss-rate, queue depth,
    /// utilization, per-class latency percentiles) on the virtual timeline
    /// and hands it back on the report. The default
    /// [`TelemetryConfig::disabled`](obs::TelemetryConfig::disabled)
    /// accumulates nothing and leaves the serve bitwise identical.
    #[must_use]
    pub fn with_telemetry(mut self, config: obs::TelemetryConfig) -> Self {
        self.telemetry = config;
        self
    }

    /// Configures SLO objectives: against the windowed telemetry series the
    /// serve tracks per-class error-budget burn rates, fires/clears
    /// multi-window burn alerts (as [`SloBurn`](obs::SpanKind::SloBurn) /
    /// [`SloClear`](obs::SpanKind::SloClear) trace spans when tracing is on)
    /// and reports an [`SloReport`](obs::SloReport). Needs
    /// [`with_telemetry`](Runtime::with_telemetry); the default
    /// [`SloConfig::disabled`](obs::SloConfig::disabled) tracks nothing.
    #[must_use]
    pub fn with_slo(mut self, config: obs::SloConfig) -> Self {
        self.slo = config;
        self
    }

    /// Overrides the front-end lowering options.
    ///
    /// Clears the kernel cache and the simulation memo: cached artifacts
    /// were compiled under the old options and their [`KernelKey`] does not
    /// encode lowering options.
    #[must_use]
    pub fn with_lower_options(mut self, options: LowerOptions) -> Self {
        self.lower = options;
        self.cache.clear();
        self.sim_memo.clear();
        self
    }

    /// The overlay variant all tiles are built from.
    pub fn variant(&self) -> FuVariant {
        self.pool.variant()
    }

    /// The active dispatch policy.
    pub fn policy(&self) -> DispatchPolicy {
        self.dispatcher.policy()
    }

    /// The active scan mode.
    pub fn scan_mode(&self) -> ScanMode {
        self.dispatcher.scan_mode()
    }

    /// The bound of the streaming ingest channel.
    pub fn ingest_capacity(&self) -> usize {
        self.ingest_capacity
    }

    /// The admission-control limit on waiting requests.
    pub fn admission_limit(&self) -> usize {
        self.admission_limit
    }

    /// The active same-kernel batching configuration.
    pub fn batching(&self) -> BatchConfig {
        self.batching
    }

    /// The active tracing configuration.
    pub fn tracing(&self) -> obs::TraceConfig {
        self.tracing
    }

    /// Whether host-time stage profiling is enabled.
    pub fn profiling(&self) -> bool {
        self.profiling
    }

    /// The tile pool (holding the state left by the last serve).
    pub fn pool(&self) -> &TilePool {
        &self.pool
    }

    /// The kernel cache (counters accumulate across serves).
    pub fn cache(&self) -> &KernelCache {
        &self.cache
    }

    /// The simulation memo (counters accumulate across serves).
    pub fn sim_memo(&self) -> &SimMemo {
        &self.sim_memo
    }

    /// Serves a pre-collected trace, taken by value so streaming it through
    /// the loop never deep-clones a workload. The requests are consumed in
    /// iteration order and dispatched online exactly as
    /// [`serve_stream`](Runtime::serve_stream) would dispatch live traffic —
    /// but straight off the trace, with no ingest channel or feeder thread
    /// in between. Pass `trace.clone()` to keep a trace for a later replay.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] for an empty trace, invalid or
    /// out-of-order arrival times, or any compile/simulation failure.
    pub fn serve<I>(&mut self, requests: I) -> Result<ServeReport, RuntimeError>
    where
        I: IntoIterator<Item = Request>,
    {
        let requests: Vec<Request> = requests.into_iter().collect();
        self.run_serve(
            Ingest::Batch(requests.into_iter()),
            None::<(fn(Submitter), _)>,
        )
    }

    /// Serves a live request stream: `feed` runs on its own thread and
    /// submits requests through the [`Submitter`] (blocking when the bounded
    /// ingest channel is full) while the event loop consumes them on the
    /// virtual timeline. The serve ends when `feed` returns (dropping the
    /// submitter) and every admitted request has completed.
    ///
    /// Requests must be submitted in non-decreasing arrival order — that is
    /// what lets the loop prove no earlier event can still arrive and makes
    /// the whole serve deterministic for a given submission order.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] when nothing was submitted, for invalid or
    /// out-of-order arrival times, or for any compile/simulation failure
    /// (reported for the first failing request on the virtual timeline).
    pub fn serve_stream<F>(&mut self, feed: F) -> Result<ServeReport, RuntimeError>
    where
        F: FnOnce(Submitter) + Send,
    {
        let (ingest_tx, ingest_rx) = mpsc::sync_channel::<Arc<Request>>(self.ingest_capacity);
        self.run_serve(Ingest::Stream(ingest_rx), Some((feed, ingest_tx)))
    }

    /// The shared serve body: resets per-serve state, spins up the sim
    /// worker pool (and the feeder thread for streaming serves), runs the
    /// event loop over `ingest` and folds the output into a report.
    fn run_serve<F>(
        &mut self,
        ingest: Ingest,
        feed: Option<(F, mpsc::SyncSender<Arc<Request>>)>,
    ) -> Result<ServeReport, RuntimeError>
    where
        F: FnOnce(Submitter) + Send,
    {
        self.pool.reset();
        self.dispatcher.reset();
        let cache_before = self.cache.stats();
        let memo_before = self.sim_memo.stats();

        let (result_tx, result_rx) = mpsc::channel::<(usize, Result<SimRun, SimError>)>();
        let workers = self.pool.num_tiles().clamp(1, Self::MAX_SIM_WORKERS);
        let variant = self.pool.variant();
        // One job channel per worker: the event loop deals jobs round-robin,
        // so workers never contend on a shared receiver lock.
        let (job_txs, job_rxs): (Vec<_>, Vec<_>) =
            (0..workers).map(|_| mpsc::channel::<SimJob>()).unzip();

        let output = thread::scope(|scope| {
            if let Some((feed, ingest_tx)) = feed {
                scope.spawn(move || feed(Submitter::new(ingest_tx)));
            }
            for job_rx in job_rxs {
                let result_tx = result_tx.clone();
                scope.spawn(move || {
                    let simulator = OverlaySimulator::new(variant).with_trace_capacity(0);
                    while let Ok(job) = job_rx.recv() {
                        let run = simulator.run(&job.compiled, &job.request.workload);
                        if result_tx.send((job.index, run)).is_err() {
                            break; // loop is gone (it failed); stop working
                        }
                    }
                });
            }
            drop(result_tx); // workers hold the clones that matter
                             // `ingest` and the job senders move into the
                             // loop so that returning (success or error)
                             // disconnects the feeder and the workers and
                             // lets the scope join them.
            self.event_loop(ingest, job_txs, &result_rx)
        })?;

        let delta = |after: CacheStats, before: CacheStats| CacheStats {
            hits: after.hits - before.hits,
            misses: after.misses - before.misses,
            evictions: after.evictions - before.evictions,
        };
        let cache = delta(self.cache.stats(), cache_before);
        let sim_memo = delta(self.sim_memo.stats(), memo_before);
        let metrics = self.aggregate(&output, cache, sim_memo);
        Ok(ServeReport {
            policy: self.dispatcher.policy(),
            outcomes: output.outcomes,
            rejected: output.rejected,
            metrics,
            trace: output.trace,
            profile: output.profile,
            telemetry: output.telemetry,
            slo: output.slo,
        })
    }

    /// The pool-wide waiting count (admission control's bound and the
    /// queue-area integrand), via the O(1) maintained counter under
    /// [`ScanMode::Indexed`] or the retained O(tiles) recomputation under
    /// [`ScanMode::LinearReference`].
    fn waiting_count(&self) -> usize {
        match self.dispatcher.scan_mode() {
            ScanMode::Indexed => self.pool.total_waiting(),
            ScanMode::LinearReference => self.pool.total_waiting_scan(),
        }
    }

    /// The discrete-event core: pulls submissions from `ingest`, fires
    /// arrival/tile-free events in virtual-time order, and returns the
    /// per-request outcomes.
    ///
    /// The horizon rule makes laziness sound: submissions arrive in
    /// non-decreasing arrival order, so once a request with arrival `h` has
    /// been received (or the channel has closed, `h = ∞`), every pending
    /// event at time ≤ `h` can fire without being preempted by a
    /// still-unseen arrival.
    fn event_loop(
        &mut self,
        mut ingest: Ingest,
        jobs: Vec<mpsc::Sender<SimJob>>,
        results: &mpsc::Receiver<(usize, Result<SimRun, SimError>)>,
    ) -> Result<LoopOutput, RuntimeError> {
        let mut ctx = self.prep_context()?;
        let tiles = self.pool.num_tiles();
        let mut intake: Vec<InFlight> = Vec::new();
        let mut state = OnlineState {
            queues: match self.dispatcher.scan_mode() {
                ScanMode::Indexed => TileQueues::Indexed(
                    (0..tiles)
                        .map(|_| TileQueue::new(self.dispatcher.policy(), self.batching.enabled()))
                        .collect(),
                ),
                ScanMode::LinearReference => TileQueues::Linear(vec![VecDeque::new(); tiles]),
            },
            taken: Vec::new(),
            events: EventQueue::new(),
            outcome_slots: Vec::new(),
            rejected: Vec::new(),
            sim: SimResults::new(results, jobs.len(), self.sim_memo.capacity() > 0),
            batcher: Batcher::new(self.batching, tiles),
            peak_queue_depth: 0,
            queue_area_us: 0.0,
            last_event_us: 0.0,
            recorder: {
                // Reuse the drained recorder from the previous serve (warm
                // ring allocation); rebuild only if the config changed or a
                // prior error path lost it.
                let scratch = std::mem::replace(
                    &mut self.trace_scratch,
                    obs::TraceRecorder::new(obs::TraceConfig::disabled()),
                );
                if scratch.capacity() == self.tracing.capacity() {
                    scratch
                } else {
                    obs::TraceRecorder::new(self.tracing)
                }
            },
            profiler: obs::StageProfiler::new(self.profiling),
            latency_hist: obs::LogHistogram::new(),
            queue_depth_hist: obs::LogHistogram::new(),
            lane_series: obs::LaneSeries::new(self.telemetry),
            global_series: obs::GlobalSeries::new(self.telemetry),
        };
        let mut pull = SubmissionPull::new();

        loop {
            {
                let OnlineState {
                    events,
                    outcome_slots,
                    taken,
                    sim,
                    recorder,
                    ..
                } = &mut state;
                let cache = &mut self.cache;
                let lower = &self.lower;
                let reconfig = &self.reconfig;
                pull.pull(
                    &mut ingest,
                    events,
                    &mut intake,
                    |request| prepare_request(cache, lower, reconfig, &mut ctx, request),
                    |inflight| {
                        outcome_slots.push(None);
                        taken.push(false);
                        sim.push_slot();
                        if recorder.enabled() {
                            recorder.record(obs::TraceEvent {
                                time_us: inflight.request.arrival_us,
                                dur_us: 0.0,
                                request_id: Some(inflight.request.id),
                                device: 0,
                                tile: None,
                                kind: obs::SpanKind::Submit,
                            });
                        }
                    },
                )?;
            }
            let Some(event) = state.events.pop() else {
                // The pull loop only exits with the ingest open when an
                // event at or before the horizon is pending, so an empty
                // queue here means the trace is complete.
                debug_assert!(
                    !pull.ingest_open,
                    "event queue drained while ingest is open"
                );
                break;
            };
            let now_us = event.time_us;
            let bookkeeping = state.profiler.begin();
            let waiting = self.waiting_count();
            state.queue_area_us += waiting as f64 * (now_us - state.last_event_us);
            state.queue_depth_hist.record(waiting as f64);
            state
                .global_series
                .note_queue(state.last_event_us, now_us, waiting);
            state.last_event_us = now_us;
            state.profiler.end(obs::Stage::Bookkeeping, bookkeeping);

            match event.kind {
                EventKind::Arrival { index } => {
                    let info = &intake[index];
                    let route = state.profiler.begin();
                    let tile = self.dispatcher.place(&info.view, now_us, &self.pool);
                    state.profiler.end(obs::Stage::Route, route);
                    // Admission control bounds *waiters*: a request that can
                    // start immediately on its (idle) tile is always
                    // admitted, one that would join a queue already holding
                    // `admission_limit` waiters pool-wide is rejected.
                    let starts_now = !self.pool.states()[tile].running;
                    let admitted = starts_now || self.waiting_count() < self.admission_limit;
                    if state.recorder.enabled() {
                        state.recorder.record(obs::TraceEvent {
                            time_us: now_us,
                            dur_us: 0.0,
                            request_id: Some(info.request.id),
                            device: 0,
                            tile: None,
                            kind: obs::SpanKind::Admission { admitted },
                        });
                    }
                    if !admitted {
                        if state.recorder.enabled() {
                            state.recorder.record(obs::TraceEvent {
                                time_us: now_us,
                                dur_us: 0.0,
                                request_id: Some(info.request.id),
                                device: 0,
                                tile: None,
                                kind: obs::SpanKind::Reject,
                            });
                        }
                        state.rejected.push(RejectedRequest {
                            id: info.request.id,
                            kernel: info.request.kernel.shared_name(),
                            arrival_us: info.request.arrival_us,
                            deadline_us: info.request.deadline_us,
                        });
                        state.lane_series.note_reject(SloClass::Standard, now_us);
                        continue;
                    }
                    // Functional execution is placement-independent, so an
                    // admitted request's simulation is sourced right away:
                    // from the memo, from an identical in-flight run, or by
                    // spawning a job on the worker pool. The loop blocks for
                    // the cycle count only when a tile is about to run it.
                    let memo = state.profiler.begin();
                    let sourced = state.sim.source(index, info, &mut self.sim_memo, &jobs);
                    state.profiler.end(obs::Stage::Memo, memo);
                    if state.recorder.enabled() {
                        match sourced {
                            SimSourced::Joined => {
                                state
                                    .recorder
                                    .counter(now_us, 0, obs::CounterName::MemoJoin)
                            }
                            SimSourced::MemoHit => {
                                state.recorder.counter(now_us, 0, obs::CounterName::MemoHit)
                            }
                            SimSourced::Spawned => {}
                        }
                    }
                    if starts_now {
                        self.start_request(tile, index, &intake, &mut state, None)?;
                    } else {
                        let scan = state.profiler.begin();
                        self.pool
                            .enqueue(tile, info.view.key, info.view.est_exec_us);
                        match &mut state.queues {
                            TileQueues::Indexed(queues) => queues[tile].push(index, &info.view),
                            TileQueues::Linear(queues) => queues[tile].push_back(index),
                        }
                        state.profiler.end(obs::Stage::Scan, scan);
                        state.peak_queue_depth = state.peak_queue_depth.max(self.waiting_count());
                    }
                }
                EventKind::TileFree { tile } => {
                    self.pool.release(tile);
                    if !state.queues.is_empty(tile) {
                        self.start_next(tile, &intake, &mut state)?;
                    }
                }
                // Fault injection is a cluster-tier feature; the
                // single-device runtime never schedules these.
                EventKind::Fault { .. } | EventKind::Requeue { .. } => {
                    unreachable!("fault events never reach the single-device loop")
                }
            }
        }

        if intake.is_empty() {
            return Err(RuntimeError::NoRequests);
        }
        let events_fired = state.events.fired();
        let outcomes: Vec<RequestOutcome> = state.outcome_slots.into_iter().flatten().collect();
        debug_assert_eq!(
            outcomes.len() + state.rejected.len(),
            intake.len(),
            "every submitted request is either served or rejected"
        );
        let mut recorder = state.recorder;
        // Assemble the windowed series (the makespan is the last event's
        // time — the final tile-free) and evaluate SLO burn against it, with
        // the burn alerts recorded as spans before the recorder drains.
        let telemetry = self.telemetry.is_enabled().then(|| {
            obs::TimeSeries::assemble(
                self.telemetry,
                state.last_event_us,
                self.pool.num_tiles(),
                &state.global_series,
                std::slice::from_ref(&state.lane_series),
            )
        });
        let slo = match (&telemetry, self.slo.is_enabled()) {
            (Some(series), true) => {
                let report = obs::evaluate_slo(series, &self.slo);
                obs::record_burn_spans(&mut recorder, &report);
                Some(report)
            }
            _ => None,
        };
        let trace = recorder.finish();
        // Hand the drained recorder (and its warm ring allocation) back to
        // the runtime for the next serve.
        self.trace_scratch = recorder;
        Ok(LoopOutput {
            outcomes,
            rejected: state.rejected,
            peak_queue_depth: state.peak_queue_depth,
            queue_area_us: state.queue_area_us,
            events_fired,
            batch: state.batcher.stats(),
            trace,
            profile: state.profiler.finish(),
            latency_hist: state.latency_hist,
            queue_depth_hist: state.queue_depth_hist,
            telemetry,
            slo,
        })
    }

    /// Pulls the next queued request off a free `tile`'s queue and starts
    /// it. Under [`ScanMode::Indexed`] the per-tile ordered queue pops the
    /// policy's choice in O(log depth); the linear reference materializes
    /// the dispatch views and scans, exactly as the pre-index runtime did.
    /// In both modes the [`Batcher`] sits over the policy's choice: it may
    /// run the oldest same-kernel waiter instead, amortizing the context
    /// switch the choice would have paid.
    fn start_next(
        &mut self,
        tile: usize,
        intake: &[InFlight],
        state: &mut OnlineState<'_>,
    ) -> Result<(), RuntimeError> {
        let now_us = state.events.now_us();
        let resident = self.pool.states()[tile].resident;
        let OnlineState {
            queues,
            taken,
            batcher,
            profiler,
            ..
        } = state;
        let scan = profiler.begin();
        let (index, remaining_tail) = match queues {
            TileQueues::Indexed(queues) => {
                let queue = &mut queues[tile];
                let choice = queue.peek_next(resident, taken);
                let index = batcher
                    .divert(
                        tile,
                        now_us,
                        resident,
                        &intake[choice].view,
                        intake[choice].request.arrival_us,
                        |key| {
                            queue
                                .oldest_for_kernel(key, taken)
                                .map(|i| (i, intake[i].view.est_exec_us))
                        },
                    )
                    .unwrap_or(choice);
                queue.take(index, taken);
                (index, queue.tail_key(taken))
            }
            TileQueues::Linear(queues) => {
                let queue = &mut queues[tile];
                let position = if self.dispatcher.policy().is_deadline_aware() {
                    let views: Vec<DispatchRequest> =
                        queue.iter().map(|&index| intake[index].view).collect();
                    self.dispatcher
                        .select_next(&self.pool.states()[tile], &views)
                } else {
                    0
                };
                let choice = queue[position];
                let position = batcher
                    .divert(
                        tile,
                        now_us,
                        resident,
                        &intake[choice].view,
                        intake[choice].request.arrival_us,
                        |key| {
                            queue
                                .iter()
                                .position(|&i| intake[i].view.key == key)
                                .map(|p| (p, intake[queue[p]].view.est_exec_us))
                        },
                    )
                    .unwrap_or(position);
                let index = queue
                    .remove(position)
                    .expect("selection returns a position inside the queue");
                (index, queue.back().map(|&i| intake[i].view.key))
            }
        };
        state.profiler.end(obs::Stage::Scan, scan);
        // Deadline-aware removal may have taken the queue tail; tell the
        // pool what the queue ends in now so residency projection stays
        // honest for later placements. The dequeue and the charge are one
        // combined pool transition (a single index update).
        let est_us = intake[index].view.est_exec_us;
        self.start_request(tile, index, intake, state, Some((est_us, remaining_tail)))
    }

    /// Commits request `index` to `tile` at the current virtual time: blocks
    /// for its measured cycle count, charges the tile's timeline with the
    /// switch + execution, records the outcome and schedules the tile-free
    /// event at the completion.
    fn start_request(
        &mut self,
        tile: usize,
        index: usize,
        intake: &[InFlight],
        state: &mut OnlineState<'_>,
        from_queue: Option<(f64, Option<KernelKey>)>,
    ) -> Result<(), RuntimeError> {
        let now_us = state.events.now_us();
        let info = &intake[index];
        let sim = state.profiler.begin();
        let run = state.sim.take(index, intake, &mut self.sim_memo)?;
        state.profiler.end(obs::Stage::Sim, sim);
        let exec_cycles = run.metrics().total_cycles + self.pool.roundtrip_cycles(tile);
        let exec_us = exec_cycles as f64 / info.fmax_mhz;
        let charged = match from_queue {
            Some((est_us, remaining_tail)) => self.pool.start_queued(
                tile,
                est_us,
                remaining_tail,
                info.view.key,
                now_us,
                info.view.switch_us,
                exec_us,
            ),
            None => self
                .pool
                .charge(tile, info.view.key, now_us, info.view.switch_us, exec_us),
        };
        state.batcher.note_start(tile, charged.switched);
        if state.recorder.enabled() {
            record_request_spans(
                &mut state.recorder,
                (0, tile),
                info,
                &charged,
                None,
                0.0,
                state.batcher.run_len(tile),
            );
        }
        state
            .latency_hist
            .record(charged.completion_us - info.request.arrival_us);
        state.lane_series.note_start(
            SloClass::Standard,
            charged.start_us,
            charged.completion_us,
            charged.completion_us - info.request.arrival_us,
            info.request
                .deadline_us
                .is_some_and(|deadline| charged.completion_us > deadline),
            false,
        );
        let request = &info.request;
        state.outcome_slots[index] = Some(RequestOutcome {
            request_id: request.id,
            kernel: request.kernel.shared_name(),
            device: 0,
            tile,
            sim: *run.metrics(),
            run,
            start_us: charged.start_us,
            queued_us: charged.start_us - request.arrival_us,
            completion_us: charged.completion_us,
            latency_us: charged.completion_us - request.arrival_us,
            switched: charged.switched,
            deadline_us: request.deadline_us,
            missed_deadline: request
                .deadline_us
                .is_some_and(|deadline| charged.completion_us > deadline),
        });
        state
            .events
            .push(charged.completion_us, EventKind::TileFree { tile });
        Ok(())
    }

    /// The per-serve facts every request's preparation shares.
    fn prep_context(&self) -> Result<PrepContext, RuntimeError> {
        PrepContext::for_pool(&self.pool)
    }

    /// Folds per-request outcomes and pool state into [`RuntimeMetrics`] —
    /// one pass over the outcomes for the counters and sums, selection (not
    /// a full sort) for the latency percentiles.
    fn aggregate(
        &self,
        output: &LoopOutput,
        cache: CacheStats,
        sim_memo: CacheStats,
    ) -> RuntimeMetrics {
        let outcomes = &output.outcomes;
        let requests = outcomes.len();
        let mut invocations = 0usize;
        let mut makespan_us = 0.0_f64;
        let mut latency_sum = 0.0_f64;
        let mut max_latency_us = 0.0_f64;
        let mut deadline_misses = 0usize;
        let mut deadline_requests = 0usize;
        let mut latencies: Vec<f64> = Vec::with_capacity(requests);
        for outcome in outcomes {
            invocations += outcome.sim.blocks;
            makespan_us = makespan_us.max(outcome.completion_us);
            latency_sum += outcome.latency_us;
            max_latency_us = max_latency_us.max(outcome.latency_us);
            deadline_misses += usize::from(outcome.missed_deadline);
            deadline_requests += usize::from(outcome.deadline_us.is_some());
            latencies.push(outcome.latency_us);
        }
        let mean_latency_us = latency_sum / requests.max(1) as f64;
        let p50_latency_us = metrics::percentile_by_selection(&mut latencies, 0.50);
        let p99_latency_us = metrics::percentile_by_selection(&mut latencies, 0.99);
        let per_second = if makespan_us > 0.0 {
            1.0e6 / makespan_us
        } else {
            0.0
        };
        let states = self.pool.states();
        RuntimeMetrics {
            requests,
            invocations,
            makespan_us,
            requests_per_sec: requests as f64 * per_second,
            invocations_per_sec: invocations as f64 * per_second,
            mean_latency_us,
            p50_latency_us,
            p99_latency_us,
            max_latency_us,
            switch_count: states.iter().map(|s| s.switches).sum(),
            total_switch_us: states.iter().map(|s| s.switch_us).sum(),
            tile_utilization: states
                .iter()
                .map(|s| {
                    if makespan_us > 0.0 {
                        s.busy_us / makespan_us
                    } else {
                        0.0
                    }
                })
                .collect(),
            tile_requests: states.iter().map(|s| s.served).collect(),
            cache,
            sim_memo,
            events_fired: output.events_fired,
            deadline_misses,
            deadline_requests,
            batch: output.batch,
            rejects: output.rejected.len(),
            rejected_deadlines: output
                .rejected
                .iter()
                .filter(|r| r.deadline_us.is_some())
                .count(),
            peak_queue_depth: output.peak_queue_depth,
            mean_queue_depth: if makespan_us > 0.0 {
                output.queue_area_us / makespan_us
            } else {
                0.0
            },
            tile_peak_queue: states.iter().map(|s| s.peak_queue_depth).collect(),
            latency_hist: output.latency_hist.clone(),
            queue_depth_hist: output.queue_depth_hist.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay_dfg::evaluate_stream;
    use overlay_frontend::Benchmark;
    use overlay_sim::Workload;

    fn benchmark_trace(count: usize, blocks: usize) -> Vec<Request> {
        let suite = [
            Benchmark::Gradient,
            Benchmark::Chebyshev,
            Benchmark::Qspline,
            Benchmark::Poly5,
        ];
        (0..count)
            .map(|i| {
                let benchmark = suite[i % suite.len()];
                let spec = KernelSpec::from_benchmark(benchmark).unwrap();
                let inputs = benchmark.dfg().unwrap().num_inputs();
                let workload = Workload::random(inputs, blocks, 0xFEED ^ i as u64);
                Request::new(i as u64, spec, workload).at(i as f64 * 2.0)
            })
            .collect()
    }

    #[test]
    fn serving_matches_the_reference_evaluator_per_request() {
        let requests = benchmark_trace(12, 8);
        let mut runtime = Runtime::new(FuVariant::V3, 4).unwrap();
        let report = runtime.serve(requests.clone()).unwrap();
        assert_eq!(report.outcomes().len(), 12);
        for (request, outcome) in requests.iter().zip(report.outcomes()) {
            let dfg = request.kernel.dfg(&LowerOptions::default()).unwrap();
            let expected = evaluate_stream(&dfg, request.workload.records()).unwrap();
            assert_eq!(outcome.outputs(), expected, "request {}", request.id);
            assert_eq!(outcome.request_id, request.id);
            assert!(outcome.latency_us > 0.0);
            assert!(outcome.queued_us >= 0.0);
            assert!(outcome.start_us >= request.arrival_us);
        }
    }

    #[test]
    fn serve_is_deterministic_across_calls_and_policies_agree_functionally() {
        let requests = benchmark_trace(10, 6);
        let mut affinity = Runtime::new(FuVariant::V4, 4).unwrap();
        let mut round_robin = Runtime::new(FuVariant::V4, 4)
            .unwrap()
            .with_policy(DispatchPolicy::RoundRobin);
        let a1 = affinity.serve(requests.clone()).unwrap();
        let a2 = affinity.serve(requests.clone()).unwrap();
        let rr = round_robin.serve(requests).unwrap();
        let tiles = |report: &ServeReport| -> Vec<usize> {
            report.outcomes().iter().map(|o| o.tile).collect()
        };
        assert_eq!(tiles(&a1), tiles(&a2));
        assert_eq!(a1.metrics().makespan_us, a2.metrics().makespan_us);
        for (lhs, rhs) in a1.outcomes().iter().zip(rr.outcomes()) {
            assert_eq!(
                lhs.outputs(),
                rhs.outputs(),
                "placement must not change results"
            );
        }
    }

    #[test]
    fn serve_stream_from_a_live_producer_matches_the_batch_shim() {
        let requests = benchmark_trace(10, 4);
        let mut runtime = Runtime::new(FuVariant::V4, 3).unwrap();
        let batch = runtime.serve(requests.clone()).unwrap();
        let streamed = runtime
            .serve_stream(|submitter| {
                for request in &requests {
                    submitter.submit(request.clone()).unwrap();
                }
            })
            .unwrap();
        assert_eq!(batch.outcomes().len(), streamed.outcomes().len());
        for (lhs, rhs) in batch.outcomes().iter().zip(streamed.outcomes()) {
            assert_eq!(lhs.request_id, rhs.request_id);
            assert_eq!(lhs.tile, rhs.tile);
            assert_eq!(lhs.completion_us, rhs.completion_us);
            assert_eq!(lhs.outputs(), rhs.outputs());
        }
        assert_eq!(batch.metrics().makespan_us, streamed.metrics().makespan_us);
    }

    #[test]
    fn affinity_spends_less_switch_time_than_round_robin_on_writeback_tiles() {
        // 3 tiles against a 4-kernel cycle, so the round-robin stride never
        // aligns with the kernel period and it swaps on nearly every request.
        let requests = benchmark_trace(32, 4);
        let mut affinity = Runtime::new(FuVariant::V3, 3).unwrap();
        let mut round_robin = Runtime::new(FuVariant::V3, 3)
            .unwrap()
            .with_policy(DispatchPolicy::RoundRobin);
        let a = affinity.serve(requests.clone()).unwrap();
        let rr = round_robin.serve(requests).unwrap();
        assert!(
            a.metrics().total_switch_us < rr.metrics().total_switch_us,
            "affinity {} us vs round-robin {} us",
            a.metrics().total_switch_us,
            rr.metrics().total_switch_us
        );
        assert!(a.metrics().switch_count < rr.metrics().switch_count);
    }

    #[test]
    fn feed_forward_pools_charge_pcap_scale_switches() {
        // On a V1 pool every kernel swap costs ~1 ms of PCAP time, so the
        // 4-kernel round-robin trace pays milliseconds of switching.
        let requests = benchmark_trace(8, 4);
        let mut runtime = Runtime::new(FuVariant::V1, 2)
            .unwrap()
            .with_policy(DispatchPolicy::RoundRobin);
        let report = runtime.serve(requests.clone()).unwrap();
        assert!(
            report.metrics().total_switch_us > 1_000.0,
            "PCAP switches are on the millisecond scale, got {} us",
            report.metrics().total_switch_us
        );
        // The same trace on a V3 pool swaps in microseconds.
        let mut writeback = Runtime::new(FuVariant::V3, 2)
            .unwrap()
            .with_policy(DispatchPolicy::RoundRobin);
        let wb = writeback.serve(requests).unwrap();
        assert!(wb.metrics().total_switch_us < 100.0);
        assert!(wb.metrics().total_switch_us > 0.0);
    }

    #[test]
    fn cache_compiles_each_kernel_once_per_serve() {
        let requests = benchmark_trace(16, 4);
        let mut runtime = Runtime::new(FuVariant::V4, 4).unwrap();
        let report = runtime.serve(requests.clone()).unwrap();
        assert_eq!(report.metrics().cache.misses, 4, "4 distinct kernels");
        assert_eq!(report.metrics().cache.hits, 12);
        // Distinct workloads per request: every simulation actually ran.
        assert_eq!(report.metrics().sim_memo.misses, 16);
        assert_eq!(report.metrics().sim_memo.hits, 0);
        // A second serve of the same trace is all hits — compile cache *and*
        // simulation memo.
        let again = runtime.serve(requests).unwrap();
        assert_eq!(again.metrics().cache.misses, 0);
        assert_eq!(again.metrics().cache.hits, 16);
        assert_eq!(again.metrics().sim_memo.misses, 0);
        assert_eq!(again.metrics().sim_memo.hits, 16);
    }

    #[test]
    fn sim_memo_skips_repeat_simulations_without_changing_results() {
        // One kernel, one workload, repeated: the memoized runtime simulates
        // once; the memo-disabled runtime simulates every request. Outcomes
        // must be identical.
        let spec = KernelSpec::from_benchmark(Benchmark::Gradient).unwrap();
        let workload = Workload::random(5, 8, 42);
        let requests: Vec<Request> = (0..10)
            .map(|i| Request::new(i, spec.clone(), workload.clone()).at(i as f64 * 3.0))
            .collect();
        let mut memoized = Runtime::new(FuVariant::V4, 2).unwrap();
        let mut unmemoized = Runtime::new(FuVariant::V4, 2)
            .unwrap()
            .with_sim_memo_capacity(0);
        // A disabled memo also disables in-flight joins: a simultaneous
        // burst of identical requests must still simulate one per request.
        let burst: Vec<Request> = (0..6)
            .map(|i| {
                Request::new(
                    100 + i,
                    KernelSpec::from_benchmark(Benchmark::Gradient).unwrap(),
                    Workload::random(5, 8, 42),
                )
                .at(0.0)
            })
            .collect();
        let mut burst_runtime = Runtime::new(FuVariant::V4, 1)
            .unwrap()
            .with_sim_memo_capacity(0);
        let burst_report = burst_runtime.serve(burst).unwrap();
        assert_eq!(burst_report.metrics().sim_memo.misses, 6);
        assert_eq!(burst_report.metrics().sim_memo.hits, 0);
        let with_memo = memoized.serve(requests.clone()).unwrap();
        let without = unmemoized.serve(requests).unwrap();
        assert_eq!(with_memo.metrics().sim_memo.misses, 1, "one real sim");
        assert_eq!(with_memo.metrics().sim_memo.hits, 9);
        assert_eq!(without.metrics().sim_memo.misses, 10, "memo disabled");
        assert_eq!(without.metrics().sim_memo.hits, 0);
        assert_eq!(memoized.sim_memo().len(), 1);
        assert!(unmemoized.sim_memo().is_empty());
        for (lhs, rhs) in with_memo.outcomes().iter().zip(without.outcomes()) {
            assert_eq!(lhs.outputs(), rhs.outputs());
            assert_eq!(lhs.tile, rhs.tile);
            assert_eq!(lhs.completion_us, rhs.completion_us);
        }
    }

    #[test]
    fn identical_in_flight_requests_join_one_simulation() {
        // A blocker occupies the single tile, then a burst of identical
        // requests queues behind it: the first spawns a simulation that is
        // still in flight when the rest arrive, so they must join it (one
        // job, fanned out) rather than each spawning their own.
        let blocker = Request::new(
            0,
            KernelSpec::from_benchmark(Benchmark::Gradient).unwrap(),
            Workload::random(5, 32, 1),
        )
        .at(0.0);
        let spec = KernelSpec::from_benchmark(Benchmark::Chebyshev).unwrap();
        let workload = Workload::random(1, 16, 7);
        let mut requests = vec![blocker];
        requests.extend((1..=8).map(|i| Request::new(i, spec.clone(), workload.clone()).at(0.0)));
        let mut runtime = Runtime::new(FuVariant::V4, 1).unwrap();
        let report = runtime.serve(requests).unwrap();
        // Two real simulations: the blocker and one shared chebyshev run.
        assert_eq!(report.metrics().sim_memo.misses, 2);
        assert_eq!(report.metrics().sim_memo.hits, 7, "7 in-flight joins");
        let reference = &report.outcomes()[1].outputs();
        for outcome in &report.outcomes()[1..] {
            assert_eq!(&outcome.outputs(), reference);
        }
    }

    #[test]
    fn metrics_account_every_request_and_tile() {
        let requests = benchmark_trace(20, 5);
        let mut runtime = Runtime::new(FuVariant::V5, 4).unwrap();
        let report = runtime.serve(requests).unwrap();
        let metrics = report.metrics();
        assert_eq!(metrics.requests, 20);
        assert_eq!(metrics.invocations, 100);
        assert_eq!(metrics.tile_requests.iter().sum::<usize>(), 20);
        assert_eq!(metrics.rejects, 0);
        assert_eq!(metrics.deadline_requests, 0);
        assert_eq!(metrics.deadline_miss_rate(), 0.0);
        assert!(metrics.makespan_us > 0.0);
        assert!(metrics.requests_per_sec > 0.0);
        assert!(metrics.p50_latency_us <= metrics.p99_latency_us);
        assert!(metrics.p99_latency_us <= metrics.max_latency_us);
        assert!(metrics.mean_queue_depth >= 0.0);
        assert!(metrics.peak_queue_depth as f64 >= metrics.mean_queue_depth);
        assert_eq!(metrics.tile_peak_queue.len(), 4);
        assert_eq!(
            metrics.sim_memo.hits + metrics.sim_memo.misses,
            20,
            "every admitted request is a memo hit or a spawned simulation"
        );
        assert!(
            metrics.events_fired >= 40,
            "every served request fires an arrival and a tile-free event"
        );
        assert!(metrics
            .tile_utilization
            .iter()
            .all(|u| (0.0..=1.0 + 1e-9).contains(u)));
    }

    #[test]
    fn admission_limit_rejects_overflow_and_reports_it() {
        // 12 simultaneous arrivals on one tile with room for 2 waiting
        // requests: 1 runs, 2 wait, the rest are rejected.
        let spec = KernelSpec::from_benchmark(Benchmark::Gradient).unwrap();
        let requests: Vec<Request> = (0..12)
            .map(|i| Request::new(i, spec.clone(), Workload::random(5, 4, i)).at(0.0))
            .collect();
        let mut runtime = Runtime::new(FuVariant::V4, 1)
            .unwrap()
            .with_admission_limit(2);
        let report = runtime.serve(requests).unwrap();
        assert_eq!(report.outcomes().len(), 3);
        assert_eq!(report.rejected().len(), 9);
        assert_eq!(report.metrics().rejects, 9);
        assert!((report.metrics().reject_rate() - 0.75).abs() < 1e-12);
        assert_eq!(report.metrics().peak_queue_depth, 2);
        // Served and rejected ids partition the submitted ids.
        let mut ids: Vec<u64> = report
            .outcomes()
            .iter()
            .map(|o| o.request_id)
            .chain(report.rejected().iter().map(|r| r.id))
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..12).collect::<Vec<u64>>());
    }

    #[test]
    fn zero_admission_limit_serves_idle_tiles_but_rejects_all_waiters() {
        let spec = KernelSpec::from_benchmark(Benchmark::Gradient).unwrap();
        let mut runtime = Runtime::new(FuVariant::V4, 1)
            .unwrap()
            .with_admission_limit(0);
        // Spaced arrivals on an idle tile never wait: all admitted, and the
        // queue-depth metrics report a genuinely empty queue.
        let spaced: Vec<Request> = (0..4)
            .map(|i| {
                Request::new(i, spec.clone(), Workload::random(5, 4, i)).at(i as f64 * 1_000_000.0)
            })
            .collect();
        let report = runtime.serve(spaced).unwrap();
        assert_eq!(report.outcomes().len(), 4);
        assert_eq!(report.metrics().rejects, 0);
        assert_eq!(report.metrics().peak_queue_depth, 0);
        assert_eq!(report.metrics().mean_queue_depth, 0.0);
        // A simultaneous burst: only the request that can start runs; the
        // shed deadline work is reported separately from misses.
        let burst: Vec<Request> = (0..5)
            .map(|i| {
                Request::new(i, spec.clone(), Workload::random(5, 4, i))
                    .at(0.0)
                    .with_deadline(1e9)
            })
            .collect();
        let report = runtime.serve(burst).unwrap();
        assert_eq!(report.outcomes().len(), 1);
        assert_eq!(report.metrics().rejects, 4);
        assert_eq!(report.metrics().rejected_deadlines, 4);
        assert_eq!(report.metrics().deadline_requests, 1);
        assert!(report.rejected().iter().all(|r| r.deadline_us == Some(1e9)));
    }

    #[test]
    fn edf_reorders_a_backlogged_queue_by_deadline() {
        // One tile; request 0 occupies it while 1..=4 queue up. The tight
        // deadline arrives last in FIFO order, so affinity misses it while
        // EDF runs it first.
        let spec = KernelSpec::from_benchmark(Benchmark::Gradient).unwrap();
        let workload = Workload::random(5, 64, 7);
        let mut requests: Vec<Request> = (0..4)
            .map(|i| Request::new(i, spec.clone(), workload.clone()).at(i as f64 * 0.01))
            .collect();
        // The per-request service time is far over 10 us, so the last-queued
        // request can only meet an (arrival + service + margin) deadline by
        // jumping the whole queue.
        let mut probe = Runtime::new(FuVariant::V4, 1).unwrap();
        let service_us = probe.serve(requests.clone()).unwrap().outcomes()[0].completion_us;
        requests.push(
            Request::new(4, spec.clone(), workload.clone())
                .at(0.05)
                .with_deadline(0.05 + 2.0 * service_us),
        );

        let mut affinity = Runtime::new(FuVariant::V4, 1).unwrap();
        let fifo = affinity.serve(requests.clone()).unwrap();
        assert_eq!(fifo.metrics().deadline_requests, 1);
        assert_eq!(fifo.metrics().deadline_misses, 1, "FIFO strands request 4");

        for policy in [
            DispatchPolicy::EarliestDeadlineFirst,
            DispatchPolicy::SlackAware,
        ] {
            let mut runtime = Runtime::new(FuVariant::V4, 1).unwrap().with_policy(policy);
            let report = runtime.serve(requests.clone()).unwrap();
            assert_eq!(
                report.metrics().deadline_misses,
                0,
                "{policy} must run the urgent request ahead of the backlog"
            );
            let urgent = report
                .outcomes()
                .iter()
                .find(|o| o.request_id == 4)
                .unwrap();
            assert!(urgent.queued_us < fifo.outcomes()[4].queued_us);
        }
    }

    #[test]
    fn changing_lower_options_invalidates_the_cache() {
        let spec = KernelSpec::from_benchmark(Benchmark::Gradient).unwrap();
        let requests = vec![Request::new(0, spec, Workload::ramp(5, 4))];
        let mut runtime = Runtime::new(FuVariant::V4, 1).unwrap();
        runtime.serve(requests.clone()).unwrap();
        assert_eq!(runtime.cache().len(), 1);
        assert_eq!(runtime.sim_memo().len(), 1);
        // The key does not encode lowering options, so swapping them must
        // drop the stale artifacts rather than serve them as hits.
        let mut runtime = runtime.with_lower_options(LowerOptions::default());
        assert!(runtime.cache().is_empty());
        assert!(runtime.sim_memo().is_empty());
        let report = runtime.serve(requests).unwrap();
        assert_eq!(report.metrics().cache.misses, 1);
        assert_eq!(report.metrics().sim_memo.misses, 1);
    }

    #[test]
    fn deadlines_are_checked_against_completion() {
        let spec = KernelSpec::from_benchmark(Benchmark::Gradient).unwrap();
        let workload = Workload::random(5, 16, 3);
        let requests = vec![
            Request::new(0, spec.clone(), workload.clone()).with_deadline(1e9),
            Request::new(1, spec, workload).with_deadline(1e-9),
        ];
        let mut runtime = Runtime::new(FuVariant::V4, 1).unwrap();
        let report = runtime.serve(requests).unwrap();
        assert!(!report.outcomes()[0].missed_deadline);
        assert!(report.outcomes()[1].missed_deadline);
        assert_eq!(report.metrics().deadline_misses, 1);
        assert_eq!(report.metrics().deadline_requests, 2);
        assert!((report.metrics().deadline_miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn invalid_traces_are_rejected() {
        let mut runtime = Runtime::new(FuVariant::V4, 2).unwrap();
        assert!(matches!(
            runtime.serve(Vec::new()),
            Err(RuntimeError::NoRequests)
        ));
        let spec = KernelSpec::from_benchmark(Benchmark::Gradient).unwrap();
        let bad = Request::new(9, spec.clone(), Workload::ramp(5, 2)).at(f64::NAN);
        assert!(matches!(
            runtime.serve(vec![bad]),
            Err(RuntimeError::InvalidArrival { request: 9, .. })
        ));
        // The online loop needs non-decreasing arrivals to be deterministic.
        let first = Request::new(0, spec.clone(), Workload::ramp(5, 2)).at(10.0);
        let stale = Request::new(1, spec, Workload::ramp(5, 2)).at(5.0);
        assert!(matches!(
            runtime.serve(vec![first, stale]),
            Err(RuntimeError::OutOfOrderArrival {
                request: 1,
                horizon_us: h,
                ..
            }) if h == 10.0
        ));
    }

    #[test]
    fn simulation_failures_surface_the_failing_request() {
        let spec = KernelSpec::from_benchmark(Benchmark::Gradient).unwrap();
        let good = Request::new(0, spec.clone(), Workload::ramp(5, 4));
        // Gradient takes 5 inputs; a 2-wide record is malformed.
        let bad = Request::new(1, spec, Workload::ramp(2, 4));
        let mut runtime = Runtime::new(FuVariant::V4, 2).unwrap();
        assert!(matches!(
            runtime.serve(vec![good, bad]),
            Err(RuntimeError::Sim(_))
        ));
    }

    #[test]
    fn random_workloads_are_deterministic_per_seed() {
        // The dispatcher and trace builders rely on this reproducibility.
        assert_eq!(Workload::random(4, 32, 11), Workload::random(4, 32, 11));
        assert_ne!(Workload::random(4, 32, 11), Workload::random(4, 32, 12));
    }
}
