//! The sharded cluster event loop: one virtual-time lane per [`Device`],
//! executed on up to [`Cluster::with_threads`] host threads, with a serial
//! commit stage that replays the lanes' logs back into the exact
//! single-threaded event order.
//!
//! The design is the out-of-order-execution idiom applied to discrete-event
//! simulation: independent units run ahead, a commit stage restores
//! architectural order. It is only reachable when routing is *static* —
//! kernel-hash routing pins every kernel to its home shard for the lifetime
//! of the cluster — because then the only cross-shard edge is the
//! submission schedule itself:
//!
//! 1. **Central pre-pass (serial).** Arrivals are validated and compiled in
//!    submission order, exactly as the serial pull would, producing the
//!    global intake plus a `(arrival, home lane)` schedule. Every request's
//!    submission index is its deterministic sequence number.
//! 2. **Device lanes (parallel).** Each lane walks the *full* schedule with
//!    the serial loop's pull rule, enqueuing only its own arrivals, and
//!    runs its local virtual-time loop with its own tile queues, batcher,
//!    sim-worker pool, memo partition and an unbounded trace ring. Every
//!    event appends a [`LaneEvent`] to a log: the lane's half of the
//!    commit-stage handshake.
//! 3. **Commit / merge (serial).** A replay walks the same pull rule over
//!    one real [`EventQueue`], consuming each lane's log in order. Because
//!    every push in the serial loop happens while processing the event the
//!    logs already name, the replay's `(time, seq)` pop order — and with it
//!    the queue-depth integral, the depth histogram, the peak, the fired
//!    count and the bounded trace ring's drop-oldest behavior — is
//!    bit-for-bit the serial loop's. Outcomes, metrics and per-lane trace
//!    records are folded back in that order.
//!
//! Determinism across thread counts is by construction: lanes are dealt
//! round-robin to worker threads and each lane's bytes depend only on its
//! own inputs, so the grouping (and the host's scheduling of it) cannot
//! change any result.
//!
//! Two documented divergences from the serial loop, both outside the
//! equivalence suites' envelope:
//!
//! * **Store/memo LRU under capacity pressure.** The pre-pass compiles in
//!   submission order instead of interleaved with event processing, and the
//!   memo is partitioned per lane and merged back. Hit/miss/eviction
//!   *counts* and all modeled outcomes are identical as long as no home
//!   store and no memo partition overflows its capacity; under overflow the
//!   LRU victim choice may differ.
//! * **Error selection.** The serial loop surfaces the chronologically
//!   first failure; the sharded loop surfaces the failure with the lowest
//!   submission index (deterministic, but possibly a different one when
//!   several requests fail). Cluster state after an error is unspecified on
//!   both paths.

use std::sync::{mpsc, Arc};
use std::thread;

use overlay_arch::FuVariant;
use overlay_sim::{OverlaySimulator, SimError, SimRun};

use crate::cache::CacheStats;
use crate::control::Batcher;
use crate::dispatch::TileQueue;
use crate::event::{EventKind, EventQueue};
use crate::metrics::{BatchStats, ReplicationStats};
use crate::obs;
use crate::route::{cheapest_acquisition, kernel_home, Acquisition, TransferModel};
use crate::session::SloClass;
use crate::{
    prepare_request, record_request_spans, BatchConfig, DispatchPolicy, DispatchRequest, InFlight,
    KernelKey, PrepContext, Request, RequestOutcome, Runtime, RuntimeError, SimJob, SimMemo,
    SimResults, SimSourced,
};

use super::{Cluster, ClusterLoopOutput, ClusterReport, Device};

/// Immutable per-serve configuration shared by every lane.
struct LaneCtx<'a> {
    devices: usize,
    tiles_per_device: usize,
    policy: DispatchPolicy,
    batching: BatchConfig,
    transfer: TransferModel,
    route_label: &'static str,
    tracing: obs::TraceConfig,
    profiling: bool,
    telemetry: obs::TelemetryConfig,
    variant: FuVariant,
    /// The global intake, indexed by submission order — lanes address
    /// requests by their global index throughout, so no translation happens
    /// at merge time.
    intake: &'a [InFlight],
    /// Each request's home lane (`kernel_home` of its fingerprint).
    homes: &'a [usize],
}

/// One lane event's entry in the commit-stage handshake log: what the lane
/// did, in its local pop order.
#[derive(Debug, Clone, Copy)]
struct LaneEvent {
    time_us: f64,
    kind: EventKind,
    /// Arrival only: the request joined a tile queue instead of starting.
    enqueued: bool,
    /// The tile-free event this event scheduled, as
    /// `(global tile, completion time)` — the replay re-pushes it to
    /// reproduce the serial `(time, seq)` order.
    started: Option<(usize, f64)>,
    /// Lane trace-ring length after this event; the commit stage absorbs
    /// lane records up to here before handling the next event.
    records_end: usize,
}

/// Everything a lane hands back to the commit stage.
struct LaneOutput {
    outcome_slots: Vec<Option<RequestOutcome>>,
    log: Vec<LaneEvent>,
    trace: Option<obs::Trace>,
    memo: SimMemo,
    batch: BatchStats,
    peak_queue: usize,
    host_loads: usize,
    transfers: (usize, u64),
    latency_hist: obs::LogHistogram,
    profile: Option<obs::ProfileStats>,
    /// The lane's telemetry partition, accumulated in per-device commit
    /// order — exactly what the serial loop's `lane_series[device]` holds.
    series: obs::LaneSeries,
    /// The first failure, tagged with the submission index being started.
    error: Option<(usize, RuntimeError)>,
}

/// Mutable lane-loop state — the lane mirror of `ClusterState`.
struct LaneState<'a> {
    queues: Vec<TileQueue>,
    taken: Vec<bool>,
    events: EventQueue,
    sim: SimResults<'a>,
    acquire_us: Vec<f64>,
    acquire_src: Vec<(&'static str, u64)>,
    batcher: Batcher,
    recorder: obs::TraceRecorder,
    profiler: obs::StageProfiler,
    latency_hist: obs::LogHistogram,
    outcome_slots: Vec<Option<RequestOutcome>>,
    log: Vec<LaneEvent>,
    peak_queue: usize,
    host_loads: usize,
    transfers: (usize, u64),
    series: obs::LaneSeries,
}

impl Cluster {
    /// The sharded serve body — `run_serve`'s prologue and epilogue around
    /// [`Cluster::sharded_loop`] instead of the serial event loop.
    pub(super) fn serve_sharded(
        &mut self,
        requests: Vec<Request>,
    ) -> Result<ClusterReport, RuntimeError> {
        for device in &mut self.devices {
            device.pool.reset();
            device.dispatcher.reset();
            device.busy_tiles = 0;
        }
        self.rebuild_load_index();
        let cache_before: Vec<CacheStats> = self.devices.iter().map(|d| d.cache.stats()).collect();
        let memo_before = self.sim_memo.stats();

        let output = self.sharded_loop(requests)?;

        let delta = |after: CacheStats, before: CacheStats| CacheStats {
            hits: after.hits - before.hits,
            misses: after.misses - before.misses,
            evictions: after.evictions - before.evictions,
        };
        let cache_deltas: Vec<CacheStats> = self
            .devices
            .iter()
            .zip(&cache_before)
            .map(|(device, &before)| delta(device.cache.stats(), before))
            .collect();
        let sim_memo = delta(self.sim_memo.stats(), memo_before);
        let (metrics, devices) = self.aggregate(&output, &cache_deltas, sim_memo);
        Ok(ClusterReport {
            policy: self.policy(),
            route: self.route,
            replication: output.replication,
            trace: output.trace,
            profile: output.profile,
            telemetry: output.telemetry,
            slo: output.slo,
            outcomes: output.outcomes,
            rejected: output.rejected,
            metrics,
            devices,
        })
    }

    /// Pre-pass, parallel lanes, and the commit stage.
    fn sharded_loop(&mut self, requests: Vec<Request>) -> Result<ClusterLoopOutput, RuntimeError> {
        let devices = self.num_devices();
        let mut ctx = PrepContext::for_pool(&self.devices[0].pool)?;
        let mut intake: Vec<InFlight> = Vec::new();
        let mut homes: Vec<usize> = Vec::new();
        let mut horizon_us = 0.0_f64;
        let mut pending_error: Option<RuntimeError> = None;
        // Central pre-pass: validate and compile in submission order — the
        // same checks (and the same home-shard compile authority) as the
        // serial pull, so validation and compile errors are the serial
        // loop's. On a failure the schedule is truncated at the failing
        // request; the lanes still serve the valid prefix so the stores and
        // memo end in a defined state, then the error is returned.
        for request in requests {
            let request = Arc::new(request);
            let arrival_us = request.arrival_us;
            if !arrival_us.is_finite() || arrival_us < 0.0 {
                pending_error = Some(RuntimeError::InvalidArrival {
                    request: request.id,
                    arrival_us,
                });
                break;
            }
            if arrival_us < horizon_us {
                pending_error = Some(RuntimeError::OutOfOrderArrival {
                    request: request.id,
                    arrival_us,
                    horizon_us,
                });
                break;
            }
            horizon_us = arrival_us;
            let home = kernel_home(request.kernel.fingerprint(), devices);
            match prepare_request(
                &mut self.devices[home].cache,
                &self.lower,
                &self.reconfig,
                &mut ctx,
                request,
            ) {
                Ok(inflight) => {
                    homes.push(home);
                    intake.push(inflight);
                }
                Err(error) => {
                    pending_error = Some(error);
                    break;
                }
            }
        }
        if intake.is_empty() {
            return Err(pending_error.unwrap_or(RuntimeError::NoRequests));
        }

        let lane_memos = self
            .sim_memo
            .split_by_home(devices, |key| kernel_home(key.kernel.fingerprint, devices));
        let threads = self.threads.min(devices).max(1);
        let ctx = LaneCtx {
            devices,
            tiles_per_device: self.tiles_per_device,
            policy: self.policy(),
            batching: self.batching,
            transfer: self.transfer,
            route_label: self.route.label(),
            tracing: self.tracing,
            profiling: self.profiling,
            telemetry: self.telemetry,
            variant: self.variant(),
            intake: &intake,
            homes: &homes,
        };

        let mut lane_slots: Vec<Option<LaneOutput>> = (0..devices).map(|_| None).collect();
        {
            // Deal lanes round-robin across the worker threads; each worker
            // runs its lanes sequentially, and every lane's bytes depend
            // only on its own inputs — the grouping (and the host's
            // scheduling of it) cannot change any result, which is what
            // makes the output identical across thread counts.
            let mut groups: Vec<Vec<(usize, &mut Device, SimMemo)>> =
                (0..threads).map(|_| Vec::new()).collect();
            for ((lane, device), memo) in self.devices.iter_mut().enumerate().zip(lane_memos) {
                groups[lane % threads].push((lane, device, memo));
            }
            let group_outputs = thread::scope(|scope| {
                let handles: Vec<_> = groups
                    .into_iter()
                    .map(|group| {
                        let ctx = &ctx;
                        scope.spawn(move || {
                            group
                                .into_iter()
                                .map(|(lane, device, memo)| (lane, run_lane(device, memo, ctx)))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|handle| handle.join().expect("a device lane thread panicked"))
                    .collect::<Vec<_>>()
            });
            for (lane, output) in group_outputs.into_iter().flatten() {
                lane_slots[lane] = Some(output);
            }
        }
        let mut lanes: Vec<LaneOutput> = lane_slots
            .into_iter()
            .map(|lane| lane.expect("every lane ran"))
            .collect();

        // Merge the memo partitions back before any early return: entries
        // and counters must survive the error path.
        self.sim_memo.merge_from_lanes(
            lanes
                .iter_mut()
                .map(|lane| std::mem::replace(&mut lane.memo, SimMemo::new(0)))
                .collect(),
        );
        self.rebuild_load_index();

        let lane_error = lanes
            .iter_mut()
            .filter_map(|lane| lane.error.take())
            .min_by_key(|(index, _)| *index);
        if let Some((_, error)) = lane_error {
            return Err(error);
        }
        if let Some(error) = pending_error {
            return Err(error);
        }
        Ok(self.replay_merge(&intake, &homes, &mut lanes))
    }

    /// The commit stage: replays the submission schedule and the lanes'
    /// logs through one real [`EventQueue`], restoring the serial loop's
    /// exact event order, and folds outcomes, metrics and trace records
    /// back in that order.
    fn replay_merge(
        &mut self,
        intake: &[InFlight],
        homes: &[usize],
        lanes: &mut [LaneOutput],
    ) -> ClusterLoopOutput {
        let devices = self.num_devices();
        let mut recorder = {
            // Reuse the drained recorder from the previous serve — same
            // idiom as the serial loop.
            let scratch = std::mem::replace(
                &mut self.trace_scratch,
                obs::TraceRecorder::new(obs::TraceConfig::disabled()),
            );
            if scratch.capacity() == self.tracing.capacity() {
                scratch
            } else {
                obs::TraceRecorder::new(self.tracing)
            }
        };
        let mut profiler = obs::StageProfiler::new(self.profiling);
        let mut events = EventQueue::new();
        let mut queue_depth_hist = obs::LogHistogram::new();
        // The replay walks the serial event order, so the cross-device
        // queue integral accumulates in exactly the serial sequence — the
        // assembled series is bitwise the serial loop's.
        let mut global_series = obs::GlobalSeries::new(self.telemetry);
        let mut waiting = 0usize;
        let mut peak_queue_depth = 0usize;
        let mut queue_area_us = 0.0_f64;
        let mut last_event_us = 0.0_f64;
        let mut cursor = 0usize;
        let mut open = true;
        let mut horizon_us = 0.0_f64;
        let mut lane_pos = vec![0usize; devices];
        let mut lane_rec = vec![0usize; devices];

        loop {
            // The serial pull rule over the already-validated schedule; the
            // submission span is recorded here, exactly where the serial
            // `grow_slots` records it.
            while open && events.peek_time_us().is_none_or(|time| time > horizon_us) {
                if cursor == intake.len() {
                    open = false;
                    horizon_us = f64::INFINITY;
                    break;
                }
                let index = cursor;
                cursor += 1;
                let info = &intake[index];
                horizon_us = info.request.arrival_us;
                events.push_monotone(horizon_us, EventKind::Arrival { index });
                if recorder.enabled() {
                    recorder.record(obs::TraceEvent {
                        time_us: info.request.arrival_us,
                        dur_us: 0.0,
                        request_id: Some(info.request.id),
                        device: 0,
                        tile: None,
                        kind: obs::SpanKind::Submit,
                    });
                }
            }
            let Some(event) = events.pop() else {
                debug_assert!(!open, "replay queue drained while the schedule is open");
                break;
            };
            let now_us = event.time_us;
            let bookkeeping = profiler.begin();
            queue_area_us += waiting as f64 * (now_us - last_event_us);
            queue_depth_hist.record(waiting as f64);
            global_series.note_queue(last_event_us, now_us, waiting);
            last_event_us = now_us;
            profiler.end(obs::Stage::Bookkeeping, bookkeeping);

            let lane = match event.kind {
                EventKind::Arrival { index } => homes[index],
                EventKind::TileFree { tile } => tile / self.tiles_per_device,
                // Faulty serves gate to the serial loop (`sharded_eligible`).
                EventKind::Fault { .. } | EventKind::Requeue { .. } => {
                    unreachable!("fault events never reach the sharded loop")
                }
            };
            let entry = lanes[lane].log[lane_pos[lane]];
            lane_pos[lane] += 1;
            debug_assert_eq!(
                entry.time_us.to_bits(),
                now_us.to_bits(),
                "replay and lane event times agree bitwise"
            );
            debug_assert_eq!(entry.kind, event.kind, "replay and lane event order agree");
            if recorder.enabled() {
                if let Some(trace) = &lanes[lane].trace {
                    for record in lane_rec[lane]..entry.records_end {
                        recorder.absorb_lane_record(trace, record);
                    }
                }
                lane_rec[lane] = entry.records_end;
            }
            match event.kind {
                EventKind::Arrival { .. } => {
                    if entry.enqueued {
                        waiting += 1;
                        peak_queue_depth = peak_queue_depth.max(waiting);
                    }
                }
                EventKind::TileFree { .. } => {
                    if entry.started.is_some() {
                        waiting -= 1;
                    }
                }
                EventKind::Fault { .. } | EventKind::Requeue { .. } => {
                    unreachable!("fault events never reach the sharded loop")
                }
            }
            if let Some((tile, completion_us)) = entry.started {
                events.push(completion_us, EventKind::TileFree { tile });
            }
        }
        debug_assert!(
            lane_pos
                .iter()
                .zip(lanes.iter())
                .all(|(pos, lane)| *pos == lane.log.len()),
            "the replay consumed every lane's log"
        );
        let events_fired = events.fired();

        let mut outcome_slots: Vec<Option<RequestOutcome>> =
            (0..intake.len()).map(|_| None).collect();
        for lane in lanes.iter_mut() {
            for (index, slot) in lane.outcome_slots.iter_mut().enumerate() {
                if let Some(outcome) = slot.take() {
                    debug_assert!(
                        outcome_slots[index].is_none(),
                        "exactly one lane serves each request"
                    );
                    outcome_slots[index] = Some(outcome);
                }
            }
        }
        let outcomes: Vec<RequestOutcome> = outcome_slots.into_iter().flatten().collect();
        debug_assert_eq!(
            outcomes.len(),
            intake.len(),
            "unlimited admission on the sharded path: every request is served"
        );
        let mut batch = BatchStats::default();
        for lane in lanes.iter() {
            batch.absorb(&lane.batch);
        }
        let telemetry = self.telemetry.is_enabled().then(|| {
            let lane_series: Vec<obs::LaneSeries> =
                lanes.iter().map(|lane| lane.series.clone()).collect();
            obs::TimeSeries::assemble(
                self.telemetry,
                last_event_us,
                devices * self.tiles_per_device,
                &global_series,
                &lane_series,
            )
        });
        let slo = match (&telemetry, self.slo.is_enabled()) {
            (Some(series), true) => {
                let report = obs::evaluate_slo(series, &self.slo);
                obs::record_burn_spans(&mut recorder, &report);
                Some(report)
            }
            _ => None,
        };
        let trace = recorder.finish();
        self.trace_scratch = recorder;
        let profile = profiler.finish().map(|mut stats| {
            for lane in lanes.iter() {
                if let Some(lane_stats) = &lane.profile {
                    stats.absorb(lane_stats);
                }
            }
            stats
        });
        ClusterLoopOutput {
            outcomes,
            rejected: Vec::new(),
            peak_queue_depth,
            queue_area_us,
            events_fired,
            batch,
            replication: ReplicationStats::default(),
            device_peak_queue: lanes.iter().map(|lane| lane.peak_queue).collect(),
            device_rejects: vec![0; devices],
            device_transfers: lanes.iter().map(|lane| lane.transfers).collect(),
            device_host_loads: lanes.iter().map(|lane| lane.host_loads).collect(),
            trace,
            profile,
            queue_depth_hist,
            device_latency_hists: lanes.iter().map(|lane| lane.latency_hist.clone()).collect(),
            telemetry,
            slo,
        }
    }
}

/// Runs one device's lane to completion: its own sim-worker pool, its own
/// virtual-time loop over the full schedule (enqueuing only its own
/// arrivals), and the handshake log the commit stage replays.
fn run_lane(device: &mut Device, mut memo: SimMemo, ctx: &LaneCtx<'_>) -> LaneOutput {
    let total_tiles = ctx.devices * ctx.tiles_per_device;
    // Split the serial loop's worker budget across the lanes so the sharded
    // serve spawns the same order of simulation threads overall.
    let lane_workers = ctx
        .tiles_per_device
        .clamp(1, (Runtime::MAX_SIM_WORKERS / ctx.devices).max(1));
    let variant = ctx.variant;
    let requests = ctx.intake.len();
    let (result_tx, result_rx) = mpsc::channel::<(usize, Result<SimRun, SimError>)>();
    let (job_txs, job_rxs): (Vec<_>, Vec<_>) =
        (0..lane_workers).map(|_| mpsc::channel::<SimJob>()).unzip();

    let mut output = thread::scope(|scope| {
        for job_rx in job_rxs {
            let result_tx = result_tx.clone();
            scope.spawn(move || {
                let simulator = OverlaySimulator::new(variant).with_trace_capacity(0);
                while let Ok(job) = job_rx.recv() {
                    let run = simulator.run(&job.compiled, &job.request.workload);
                    if result_tx.send((job.index, run)).is_err() {
                        break; // the lane is gone (it failed); stop working
                    }
                }
            });
        }
        drop(result_tx); // workers hold the clones that matter
        let mut state = LaneState {
            queues: (0..total_tiles)
                .map(|_| TileQueue::new(ctx.policy, ctx.batching.enabled()))
                .collect(),
            taken: vec![false; requests],
            events: EventQueue::new(),
            sim: SimResults::new(&result_rx, lane_workers, memo.capacity() > 0),
            acquire_us: vec![0.0; requests],
            acquire_src: vec![("resident", 0); requests],
            batcher: Batcher::new(ctx.batching, total_tiles),
            // Unbounded lane ring: drop-oldest and route-slot recycling are
            // the commit stage's job, in merged order.
            recorder: obs::TraceRecorder::new(if ctx.tracing.is_enabled() {
                obs::TraceConfig::with_capacity(usize::MAX)
            } else {
                obs::TraceConfig::disabled()
            }),
            profiler: obs::StageProfiler::new(ctx.profiling),
            latency_hist: obs::LogHistogram::new(),
            outcome_slots: (0..requests).map(|_| None).collect(),
            log: Vec::new(),
            peak_queue: 0,
            host_loads: 0,
            transfers: (0, 0),
            series: obs::LaneSeries::new(ctx.telemetry),
        };
        for _ in 0..requests {
            state.sim.push_slot();
        }
        let error = lane_loop(device, ctx, &mut state, &mut memo, &job_txs);
        drop(job_txs); // release the workers
        LaneOutput {
            outcome_slots: state.outcome_slots,
            log: state.log,
            trace: state.recorder.finish(),
            memo: SimMemo::new(0), // placeholder; the partition is moved in below
            batch: state.batcher.stats(),
            peak_queue: state.peak_queue,
            host_loads: state.host_loads,
            transfers: state.transfers,
            latency_hist: state.latency_hist,
            profile: state.profiler.finish(),
            series: state.series,
            error,
        }
    });
    output.memo = memo;
    output
}

/// The lane's virtual-time loop — the serial cluster event loop restricted
/// to one device, with the commit-stage log appended per event.
fn lane_loop(
    device: &mut Device,
    ctx: &LaneCtx<'_>,
    state: &mut LaneState<'_>,
    memo: &mut SimMemo,
    jobs: &[mpsc::Sender<SimJob>],
) -> Option<(usize, RuntimeError)> {
    let lane = device.id;
    let mut cursor = 0usize;
    let mut open = true;
    let mut horizon_us = 0.0_f64;
    loop {
        // The serial pull rule over the full schedule: advance the horizon
        // one submission at a time, enqueuing only this lane's arrivals.
        // Pops below never run past the horizon, so the lane's event order
        // is the serial order restricted to this device.
        while open
            && state
                .events
                .peek_time_us()
                .is_none_or(|time| time > horizon_us)
        {
            if cursor == ctx.intake.len() {
                open = false;
                horizon_us = f64::INFINITY;
                break;
            }
            let index = cursor;
            cursor += 1;
            horizon_us = ctx.intake[index].request.arrival_us;
            if ctx.homes[index] == lane {
                state
                    .events
                    .push_monotone(horizon_us, EventKind::Arrival { index });
            }
        }
        let Some(event) = state.events.pop() else {
            debug_assert!(!open, "lane queue drained while the schedule is open");
            break;
        };
        let now_us = event.time_us;
        match event.kind {
            EventKind::Arrival { index } => {
                let info = &ctx.intake[index];
                let route = state.profiler.begin();
                // Kernel-hash routing made this lane the home shard; the
                // acquisition mirrors `peek_acquisition` with the foreign
                // holder set empty — under lifetime kernel-hash routing
                // with replication off no other store ever adopts this
                // lane's kernels, so a non-resident image (possible only
                // under store eviction pressure) is a host load.
                let acquisition = if device.cache.contains(&info.view.key) {
                    Acquisition::Resident
                } else {
                    cheapest_acquisition(&ctx.transfer, std::iter::empty(), lane, info.image_bytes)
                };
                if state.recorder.enabled() {
                    state.recorder.record(obs::TraceEvent {
                        time_us: now_us,
                        dur_us: 0.0,
                        request_id: Some(info.request.id),
                        device: lane,
                        tile: None,
                        kind: obs::SpanKind::RouteChoice(Box::new(obs::RouteChoice {
                            policy: ctx.route_label,
                            chosen: lane,
                            candidates: Vec::new(),
                        })),
                    });
                }
                let adjusted = DispatchRequest {
                    switch_us: info.view.switch_us + acquisition.cost_us(),
                    ..info.view
                };
                let local_tile = device.dispatcher.place(&adjusted, now_us, &device.pool);
                state.profiler.end(obs::Stage::Route, route);
                let tile = lane * ctx.tiles_per_device + local_tile;
                let starts_now = !device.pool.states()[local_tile].running;
                // Unlimited admission is an eligibility condition for the
                // sharded path, so every arrival is admitted.
                if state.recorder.enabled() {
                    state.recorder.record(obs::TraceEvent {
                        time_us: now_us,
                        dur_us: 0.0,
                        request_id: Some(info.request.id),
                        device: lane,
                        tile: None,
                        kind: obs::SpanKind::Admission { admitted: true },
                    });
                }
                state.acquire_src[index] = (acquisition.label(), acquisition.bytes());
                state.acquire_us[index] = match acquisition {
                    // The store adoption mirrors `commit_acquisition` on a
                    // multi-device cluster (the sharded path requires one).
                    Acquisition::Resident => {
                        device.cache.get_or_share(info.view.key, &info.compiled);
                        0.0
                    }
                    Acquisition::HostLoad { cost_us } => {
                        device.cache.get_or_share(info.view.key, &info.compiled);
                        state.host_loads += 1;
                        cost_us
                    }
                    Acquisition::Transfer { cost_us, bytes, .. } => {
                        device.cache.get_or_share(info.view.key, &info.compiled);
                        state.transfers.0 += 1;
                        state.transfers.1 += bytes as u64;
                        cost_us
                    }
                };
                let memo_probe = state.profiler.begin();
                let sourced = state.sim.source(index, info, memo, jobs);
                state.profiler.end(obs::Stage::Memo, memo_probe);
                match sourced {
                    SimSourced::Joined => {
                        state
                            .recorder
                            .counter(now_us, lane, obs::CounterName::MemoJoin);
                    }
                    SimSourced::MemoHit => {
                        state
                            .recorder
                            .counter(now_us, lane, obs::CounterName::MemoHit);
                    }
                    SimSourced::Spawned => {}
                }
                let started = if starts_now {
                    match lane_start_request(device, ctx, state, memo, local_tile, index, None) {
                        Ok(completion_us) => Some((tile, completion_us)),
                        Err(error) => {
                            state.log.push(LaneEvent {
                                time_us: now_us,
                                kind: event.kind,
                                enqueued: false,
                                started: None,
                                records_end: state.recorder.recorded(),
                            });
                            return Some((index, error));
                        }
                    }
                } else {
                    let scan = state.profiler.begin();
                    device.enqueue(local_tile, info.view.key, info.view.est_exec_us);
                    state.queues[tile].push(index, &info.view);
                    state.profiler.end(obs::Stage::Scan, scan);
                    state.peak_queue = state.peak_queue.max(device.pool.total_waiting());
                    None
                };
                state.log.push(LaneEvent {
                    time_us: now_us,
                    kind: event.kind,
                    enqueued: !starts_now,
                    started,
                    records_end: state.recorder.recorded(),
                });
            }
            EventKind::TileFree { tile } => {
                debug_assert_eq!(tile / ctx.tiles_per_device, lane, "lane-local tile-free");
                let local_tile = tile % ctx.tiles_per_device;
                device.release(local_tile);
                let started = if !state.queues[tile].is_empty() {
                    match lane_start_next(device, ctx, state, memo, local_tile) {
                        Ok(completion_us) => Some((tile, completion_us)),
                        Err((index, error)) => {
                            state.log.push(LaneEvent {
                                time_us: now_us,
                                kind: event.kind,
                                enqueued: false,
                                started: None,
                                records_end: state.recorder.recorded(),
                            });
                            return Some((index, error));
                        }
                    }
                } else {
                    None
                };
                state.log.push(LaneEvent {
                    time_us: now_us,
                    kind: event.kind,
                    enqueued: false,
                    started,
                    records_end: state.recorder.recorded(),
                });
            }
            // Faulty serves gate to the serial loop (`sharded_eligible`).
            EventKind::Fault { .. } | EventKind::Requeue { .. } => {
                unreachable!("fault events never reach the sharded loop")
            }
        }
    }
    None
}

/// The lane mirror of the serial `start_next`: indexed pop with the
/// batching layer over the policy's choice, then start.
fn lane_start_next(
    device: &mut Device,
    ctx: &LaneCtx<'_>,
    state: &mut LaneState<'_>,
    memo: &mut SimMemo,
    local_tile: usize,
) -> Result<f64, (usize, RuntimeError)> {
    let lane = device.id;
    let tile = lane * ctx.tiles_per_device + local_tile;
    let now_us = state.events.now_us();
    let scan = state.profiler.begin();
    let queue = &mut state.queues[tile];
    let resident = device.pool.states()[local_tile].resident;
    let choice = queue.peek_next(resident, &state.taken);
    let choice_view = DispatchRequest {
        switch_us: ctx.intake[choice].view.switch_us + state.acquire_us[choice],
        ..ctx.intake[choice].view
    };
    let index = state
        .batcher
        .divert(
            tile,
            now_us,
            resident,
            &choice_view,
            ctx.intake[choice].request.arrival_us,
            |key| {
                queue
                    .oldest_for_kernel(key, &state.taken)
                    .map(|i| (i, ctx.intake[i].view.est_exec_us))
            },
        )
        .unwrap_or(choice);
    queue.take(index, &mut state.taken);
    let remaining_tail = queue.tail_key(&state.taken);
    let est_us = ctx.intake[index].view.est_exec_us;
    state.profiler.end(obs::Stage::Scan, scan);
    lane_start_request(
        device,
        ctx,
        state,
        memo,
        local_tile,
        index,
        Some((est_us, remaining_tail)),
    )
    .map_err(|error| (index, error))
}

/// The lane mirror of the serial `start_request`: commits the request to
/// the tile at the current virtual time and schedules its tile-free event.
fn lane_start_request(
    device: &mut Device,
    ctx: &LaneCtx<'_>,
    state: &mut LaneState<'_>,
    memo: &mut SimMemo,
    local_tile: usize,
    index: usize,
    from_queue: Option<(f64, Option<KernelKey>)>,
) -> Result<f64, RuntimeError> {
    let lane = device.id;
    let now_us = state.events.now_us();
    let info = &ctx.intake[index];
    let sim_probe = state.profiler.begin();
    let run = state.sim.take(index, ctx.intake, memo)?;
    state.profiler.end(obs::Stage::Sim, sim_probe);
    let exec_cycles = run.metrics().total_cycles + device.pool.roundtrip_cycles(local_tile);
    let exec_us = exec_cycles as f64 / info.fmax_mhz;
    let switch_us = info.view.switch_us + state.acquire_us[index];
    let charged = match from_queue {
        Some((est_us, remaining_tail)) => device.start_queued(
            local_tile,
            est_us,
            remaining_tail,
            info.view.key,
            now_us,
            switch_us,
            exec_us,
        ),
        None => device.charge(local_tile, info.view.key, now_us, switch_us, exec_us),
    };
    let tile = lane * ctx.tiles_per_device + local_tile;
    state.batcher.note_start(tile, charged.switched);
    if state.recorder.enabled() {
        let (source, bytes) = state.acquire_src[index];
        let acquire = if charged.switched {
            Some((state.acquire_us[index], source, bytes))
        } else {
            None
        };
        record_request_spans(
            &mut state.recorder,
            (lane, local_tile),
            info,
            &charged,
            acquire,
            // Sessions (and with them activation charges) gate to the
            // serial loop, so no lane ever pays an activation.
            0.0,
            state.batcher.run_len(tile),
        );
    }
    state
        .latency_hist
        .record(charged.completion_us - info.request.arrival_us);
    state.series.note_start(
        SloClass::Standard,
        charged.start_us,
        charged.completion_us,
        charged.completion_us - info.request.arrival_us,
        info.request
            .deadline_us
            .is_some_and(|deadline| charged.completion_us > deadline),
        charged.switched && state.acquire_src[index].0 == "transfer",
    );
    let request = &info.request;
    state.outcome_slots[index] = Some(RequestOutcome {
        request_id: request.id,
        kernel: request.kernel.shared_name(),
        device: lane,
        tile: local_tile,
        sim: *run.metrics(),
        run,
        start_us: charged.start_us,
        queued_us: charged.start_us - request.arrival_us,
        completion_us: charged.completion_us,
        latency_us: charged.completion_us - request.arrival_us,
        switched: charged.switched,
        deadline_us: request.deadline_us,
        missed_deadline: request
            .deadline_us
            .is_some_and(|deadline| charged.completion_us > deadline),
    });
    state
        .events
        .push(charged.completion_us, EventKind::TileFree { tile });
    Ok(charged.completion_us)
}
