//! Synthetic DFG generation for stress testing and property-based tests.
//!
//! The paper evaluates eight kernels; to exercise the scheduler and the
//! cycle-accurate simulator far beyond that set, this module generates random
//! feed-forward graphs with a controllable number of inputs, operations and a
//! target depth. Generated graphs are always valid (acyclic, arity-correct,
//! single output, every input used).

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::builder::DfgBuilder;
use crate::error::DfgError;
use crate::graph::Dfg;
use crate::node::NodeId;
use crate::op::Op;
use crate::value::Value;

/// Parameters for the random DFG generator.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Number of kernel inputs (≥ 1).
    pub inputs: usize,
    /// Number of operation nodes (≥ 1).
    pub ops: usize,
    /// Target graph depth; the generator aims for this depth and never
    /// exceeds it. Must satisfy `1 ≤ target_depth ≤ ops`.
    pub target_depth: usize,
    /// Probability (0.0–1.0) that a binary operand is a constant rather than
    /// an existing value.
    pub const_probability: f64,
    /// Operations the generator may pick from. Defaults to the arithmetic
    /// subset the paper's kernels use.
    pub op_pool: Vec<Op>,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            inputs: 4,
            ops: 16,
            target_depth: 6,
            const_probability: 0.1,
            op_pool: vec![Op::Add, Op::Sub, Op::Mul, Op::Square],
        }
    }
}

/// Deterministic random DFG generator.
///
/// # Example
///
/// ```
/// use overlay_dfg::{DfgGenerator, GeneratorConfig};
///
/// # fn main() -> Result<(), overlay_dfg::DfgError> {
/// let config = GeneratorConfig { inputs: 3, ops: 20, target_depth: 5, ..Default::default() };
/// let dfg = DfgGenerator::new(42).generate(&config)?;
/// assert_eq!(dfg.num_inputs(), 3);
/// assert_eq!(dfg.num_ops(), 20);
/// assert!(dfg.analysis().depth() <= 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DfgGenerator {
    rng: StdRng,
    counter: usize,
}

impl DfgGenerator {
    /// Creates a generator seeded with `seed`; the same seed and configuration
    /// always produce the same graph.
    pub fn new(seed: u64) -> Self {
        DfgGenerator {
            rng: StdRng::seed_from_u64(seed),
            counter: 0,
        }
    }

    /// Generates one random graph according to `config`.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is degenerate (zero inputs or
    /// operations, or a target depth larger than the operation count).
    pub fn generate(&mut self, config: &GeneratorConfig) -> Result<Dfg, DfgError> {
        if config.inputs == 0 {
            return Err(DfgError::InputCountMismatch {
                expected: 1,
                found: 0,
            });
        }
        if config.ops == 0 || config.target_depth == 0 || config.target_depth > config.ops {
            return Err(DfgError::NoOutputs);
        }
        let pool = if config.op_pool.is_empty() {
            vec![Op::Add, Op::Sub, Op::Mul]
        } else {
            config.op_pool.clone()
        };

        self.counter += 1;
        let mut builder = DfgBuilder::new(format!("synthetic-{}", self.counter));
        let inputs: Vec<NodeId> = (0..config.inputs)
            .map(|i| builder.input(format!("i{i}")))
            .collect();

        // Distribute the ops over `target_depth` levels, at least one per
        // level so the depth target is met exactly when possible.
        let mut per_level = vec![1usize; config.target_depth];
        for _ in 0..(config.ops - config.target_depth) {
            let level = self.rng.gen_range(0..config.target_depth);
            per_level[level] += 1;
        }

        let mut previous_level: Vec<NodeId> = Vec::new();
        let mut all_values: Vec<NodeId> = inputs.clone();
        let mut last_node = None;
        for (level, &count) in per_level.iter().enumerate() {
            let mut this_level = Vec::with_capacity(count);
            for slot in 0..count {
                let op = *pool.choose(&mut self.rng).expect("non-empty op pool");
                let operands = self.pick_operands(
                    op,
                    level,
                    slot,
                    &previous_level,
                    &all_values,
                    &inputs,
                    config,
                    &mut builder,
                );
                let id = builder.op(op, &operands)?;
                this_level.push(id);
                last_node = Some(id);
            }
            all_values.extend(this_level.iter().copied());
            previous_level = this_level;
        }

        // Guarantee every input is consumed: fold unused inputs into a chain
        // of extra adds hanging off the last node would change op count, so
        // instead retry operand selection is avoided by wiring unused inputs
        // into the first-level nodes post-hoc is impossible (graphs are
        // immutable). The simple, correct approach: pick operands for level 0
        // so that inputs are consumed round-robin (done in `pick_operands`),
        // which guarantees usage whenever level 0 has at least
        // `ceil(inputs / 2)` nodes; otherwise fall back to a fixup pass here.
        let dfg_probe = builder.clone().build_unvalidated();
        let unused: Vec<NodeId> = inputs
            .iter()
            .copied()
            .filter(|&i| dfg_probe.fanout(i) == 0)
            .collect();
        let mut tail = last_node.expect("at least one operation was generated");
        for input in unused {
            tail = builder.op(Op::Add, &[tail, input])?;
        }
        builder.output("out", tail);
        builder.build()
    }

    #[allow(clippy::too_many_arguments)]
    fn pick_operands(
        &mut self,
        op: Op,
        level: usize,
        slot: usize,
        previous_level: &[NodeId],
        all_values: &[NodeId],
        inputs: &[NodeId],
        config: &GeneratorConfig,
        builder: &mut DfgBuilder,
    ) -> Vec<NodeId> {
        let arity = op.arity();
        let mut operands = Vec::with_capacity(arity);
        for k in 0..arity {
            let operand = if level == 0 {
                // Round-robin over the inputs so that early levels consume
                // every input at least once.
                inputs[(slot * arity + k) % inputs.len()]
            } else if k == 0 {
                // First operand comes from the previous level to enforce the
                // level structure (and therefore the depth).
                previous_level[self.rng.gen_range(0..previous_level.len())]
            } else if self.rng.gen_bool(config.const_probability) {
                builder.constant(Value::new(self.rng.gen_range(-64..=64)))
            } else {
                all_values[self.rng.gen_range(0..all_values.len())]
            };
            operands.push(operand);
        }
        operands
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_graphs_are_valid_and_match_config() {
        let mut generator = DfgGenerator::new(7);
        for (inputs, ops, depth) in [(1, 5, 3), (3, 12, 4), (5, 40, 10), (2, 8, 8)] {
            let config = GeneratorConfig {
                inputs,
                ops,
                target_depth: depth,
                ..Default::default()
            };
            let dfg = generator.generate(&config).unwrap();
            assert!(dfg.validate().is_ok());
            assert_eq!(dfg.num_inputs(), inputs);
            assert!(
                dfg.num_ops() >= ops,
                "extra fixup adds may only increase ops"
            );
            assert!(dfg.analysis().depth() >= depth.min(dfg.num_ops()));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = GeneratorConfig::default();
        let a = DfgGenerator::new(99).generate(&config).unwrap();
        let b = DfgGenerator::new(99).generate(&config).unwrap();
        assert_eq!(a.num_nodes(), b.num_nodes());
        let ops_a: Vec<_> = a.nodes().iter().filter_map(|n| n.op()).collect();
        let ops_b: Vec<_> = b.nodes().iter().filter_map(|n| n.op()).collect();
        assert_eq!(ops_a, ops_b);
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let mut generator = DfgGenerator::new(1);
        assert!(generator
            .generate(&GeneratorConfig {
                inputs: 0,
                ..Default::default()
            })
            .is_err());
        assert!(generator
            .generate(&GeneratorConfig {
                ops: 3,
                target_depth: 10,
                ..Default::default()
            })
            .is_err());
    }

    #[test]
    fn every_input_is_consumed() {
        let mut generator = DfgGenerator::new(3);
        let config = GeneratorConfig {
            inputs: 7,
            ops: 9,
            target_depth: 6,
            ..Default::default()
        };
        let dfg = generator.generate(&config).unwrap();
        for &input in dfg.inputs() {
            assert!(dfg.fanout(input) > 0);
        }
    }
}
