//! The scalar value type carried on DFG edges and through the overlay
//! datapath.
//!
//! The paper's functional unit is built around the Xilinx DSP48E1 primitive
//! operating on a 32-bit streaming word (the V2 variant widens the *stream* to
//! 64 bits by replicating the datapath, not the word). All arithmetic in the
//! reference evaluator and the cycle-accurate simulator therefore uses 32-bit
//! two's-complement wrapping semantics so the two agree bit-for-bit.

use std::fmt;

/// A 32-bit signed word as carried by the overlay datapath.
///
/// `Value` is a thin newtype over `i32` providing the wrapping arithmetic the
/// DSP-block ALU implements. It exists so that evaluation code cannot
/// accidentally mix host-width arithmetic with datapath arithmetic.
///
/// # Example
///
/// ```
/// use overlay_dfg::Value;
///
/// let a = Value::new(i32::MAX);
/// let b = Value::new(1);
/// // The datapath wraps rather than panicking on overflow.
/// assert_eq!(a.wrapping_add(b), Value::new(i32::MIN));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Value(i32);

impl Value {
    /// The zero word.
    pub const ZERO: Value = Value(0);
    /// The all-ones word (-1 in two's complement).
    pub const ONES: Value = Value(-1);

    /// Creates a value from a raw `i32` word.
    pub const fn new(raw: i32) -> Self {
        Value(raw)
    }

    /// Returns the underlying `i32` word.
    pub const fn get(self) -> i32 {
        self.0
    }

    /// Returns the word reinterpreted as an unsigned 32-bit quantity.
    pub const fn as_u32(self) -> u32 {
        self.0 as u32
    }

    /// Wrapping addition (DSP ALU `A + B`).
    #[must_use]
    pub const fn wrapping_add(self, rhs: Value) -> Value {
        Value(self.0.wrapping_add(rhs.0))
    }

    /// Wrapping subtraction (DSP ALU `A - B`).
    #[must_use]
    pub const fn wrapping_sub(self, rhs: Value) -> Value {
        Value(self.0.wrapping_sub(rhs.0))
    }

    /// Wrapping multiplication (DSP multiplier, truncated to 32 bits).
    #[must_use]
    pub const fn wrapping_mul(self, rhs: Value) -> Value {
        Value(self.0.wrapping_mul(rhs.0))
    }

    /// Wrapping negation.
    #[must_use]
    pub const fn wrapping_neg(self) -> Value {
        Value(self.0.wrapping_neg())
    }

    /// Absolute value with wrapping on `i32::MIN`.
    #[must_use]
    pub const fn wrapping_abs(self) -> Value {
        Value(self.0.wrapping_abs())
    }

    /// Bitwise AND.
    #[must_use]
    pub const fn and(self, rhs: Value) -> Value {
        Value(self.0 & rhs.0)
    }

    /// Bitwise OR.
    #[must_use]
    pub const fn or(self, rhs: Value) -> Value {
        Value(self.0 | rhs.0)
    }

    /// Bitwise XOR.
    #[must_use]
    pub const fn xor(self, rhs: Value) -> Value {
        Value(self.0 ^ rhs.0)
    }

    /// Logical shift left by `rhs & 31` bits (barrel-shifter semantics).
    #[must_use]
    pub const fn shl(self, rhs: Value) -> Value {
        Value(((self.0 as u32) << (rhs.0 as u32 & 31)) as i32)
    }

    /// Arithmetic shift right by `rhs & 31` bits.
    #[must_use]
    pub const fn shr(self, rhs: Value) -> Value {
        Value(self.0 >> (rhs.0 as u32 & 31))
    }

    /// Signed minimum.
    #[must_use]
    pub fn min(self, rhs: Value) -> Value {
        Value(self.0.min(rhs.0))
    }

    /// Signed maximum.
    #[must_use]
    pub fn max(self, rhs: Value) -> Value {
        Value(self.0.max(rhs.0))
    }
}

impl From<i32> for Value {
    fn from(raw: i32) -> Self {
        Value(raw)
    }
}

impl From<Value> for i32 {
    fn from(value: Value) -> Self {
        value.0
    }
}

impl From<Value> for i64 {
    fn from(value: Value) -> Self {
        i64::from(value.0)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::LowerHex for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&(self.0 as u32), f)
    }
}

impl fmt::UpperHex for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&(self.0 as u32), f)
    }
}

impl fmt::Binary for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&(self.0 as u32), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapping_add_wraps_at_i32_boundary() {
        assert_eq!(
            Value::new(i32::MAX).wrapping_add(Value::new(1)),
            Value::new(i32::MIN)
        );
    }

    #[test]
    fn wrapping_mul_truncates_to_32_bits() {
        let a = Value::new(0x4000_0000);
        assert_eq!(a.wrapping_mul(Value::new(4)), Value::new(0));
    }

    #[test]
    fn shifts_mask_the_shift_amount() {
        assert_eq!(Value::new(1).shl(Value::new(33)), Value::new(2));
        assert_eq!(Value::new(-8).shr(Value::new(1)), Value::new(-4));
    }

    #[test]
    fn min_max_are_signed() {
        assert_eq!(Value::new(-3).min(Value::new(2)), Value::new(-3));
        assert_eq!(Value::new(-3).max(Value::new(2)), Value::new(2));
    }

    #[test]
    fn display_and_hex_formatting() {
        let v = Value::new(-1);
        assert_eq!(v.to_string(), "-1");
        assert_eq!(format!("{v:x}"), "ffffffff");
        assert_eq!(format!("{v:X}"), "FFFFFFFF");
    }

    #[test]
    fn conversions_round_trip() {
        let v = Value::from(42);
        assert_eq!(i32::from(v), 42);
        assert_eq!(i64::from(v), 42);
    }
}
