//! Reference (functional) evaluation of a [`Dfg`].
//!
//! The evaluator computes what the kernel *should* produce, independent of
//! any overlay architecture. It is the golden model the cycle-accurate
//! simulator is checked against, and it is also used by the examples to show
//! that a compiled kernel produces the same results as its specification.

use std::collections::HashMap;

use crate::error::DfgError;
use crate::graph::Dfg;
use crate::node::{NodeId, NodeKind};
use crate::value::Value;

/// Evaluation context holding the value computed for every node of one
/// kernel invocation.
///
/// Use [`evaluate`] for the common "inputs in, outputs out" case; the context
/// is useful when intermediate values are needed (e.g. to cross-check a
/// simulator trace node by node).
///
/// # Example
///
/// ```
/// use overlay_dfg::{DfgBuilder, EvalContext, Op, Value};
///
/// # fn main() -> Result<(), overlay_dfg::DfgError> {
/// let mut b = DfgBuilder::new("sum-square");
/// let a = b.input("a");
/// let b_in = b.input("b");
/// let s = b.op(Op::Add, &[a, b_in])?;
/// let q = b.op(Op::Square, &[s])?;
/// b.output("o", q);
/// let dfg = b.build()?;
///
/// let ctx = EvalContext::run(&dfg, &[Value::new(3), Value::new(4)])?;
/// assert_eq!(ctx.outputs(), vec![Value::new(49)]);
/// assert_eq!(ctx.value(s), Some(Value::new(7)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EvalContext {
    values: HashMap<NodeId, Value>,
    outputs: Vec<Value>,
}

impl EvalContext {
    /// Evaluates `dfg` on one set of input values.
    ///
    /// # Errors
    ///
    /// * [`DfgError::InputCountMismatch`] if `inputs.len()` differs from the
    ///   graph's input count.
    /// * Any structural error surfaced while walking the graph (these cannot
    ///   occur for graphs produced by [`crate::DfgBuilder::build`]).
    pub fn run(dfg: &Dfg, inputs: &[Value]) -> Result<Self, DfgError> {
        if inputs.len() != dfg.num_inputs() {
            return Err(DfgError::InputCountMismatch {
                expected: dfg.num_inputs(),
                found: inputs.len(),
            });
        }
        let mut values: HashMap<NodeId, Value> = HashMap::with_capacity(dfg.num_nodes());
        let mut outputs = vec![Value::ZERO; dfg.num_outputs()];
        for node in dfg.nodes() {
            match node.kind() {
                NodeKind::Input { position } => {
                    values.insert(node.id(), inputs[*position]);
                }
                NodeKind::Const { value } => {
                    values.insert(node.id(), *value);
                }
                NodeKind::Operation { op, operands } => {
                    let operand_values: Vec<Value> = operands
                        .iter()
                        .map(|id| values.get(id).copied().ok_or(DfgError::UnknownNode(*id)))
                        .collect::<Result<_, _>>()?;
                    values.insert(node.id(), op.apply(&operand_values)?);
                }
                NodeKind::Output { position, source } => {
                    let value = values
                        .get(source)
                        .copied()
                        .ok_or(DfgError::UnknownNode(*source))?;
                    outputs[*position] = value;
                    values.insert(node.id(), value);
                }
            }
        }
        Ok(EvalContext { values, outputs })
    }

    /// The value computed for a node, if the node exists.
    pub fn value(&self, id: NodeId) -> Option<Value> {
        self.values.get(&id).copied()
    }

    /// The kernel outputs, in stream order.
    pub fn outputs(&self) -> Vec<Value> {
        self.outputs.clone()
    }
}

/// Evaluates a graph on one set of inputs and returns the outputs in stream
/// order.
///
/// # Errors
///
/// See [`EvalContext::run`].
///
/// # Example
///
/// ```
/// use overlay_dfg::{evaluate, DfgBuilder, Op, Value};
///
/// # fn main() -> Result<(), overlay_dfg::DfgError> {
/// let mut b = DfgBuilder::new("diff");
/// let a = b.input("a");
/// let c = b.input("b");
/// let d = b.op(Op::Sub, &[a, c])?;
/// b.output("d", d);
/// let dfg = b.build()?;
/// assert_eq!(evaluate(&dfg, &[Value::new(10), Value::new(4)])?, vec![Value::new(6)]);
/// # Ok(())
/// # }
/// ```
pub fn evaluate(dfg: &Dfg, inputs: &[Value]) -> Result<Vec<Value>, DfgError> {
    Ok(EvalContext::run(dfg, inputs)?.outputs())
}

/// Evaluates a graph over a stream of input records, returning one output
/// record per input record.
///
/// This mirrors how the overlay processes data: the streaming interface
/// presents one record (all kernel inputs) per initiation interval.
///
/// # Errors
///
/// Fails on the first record whose evaluation fails; see [`EvalContext::run`].
pub fn evaluate_stream(dfg: &Dfg, records: &[Vec<Value>]) -> Result<Vec<Vec<Value>>, DfgError> {
    records.iter().map(|record| evaluate(dfg, record)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfgBuilder;
    use crate::op::Op;

    fn gradient() -> Dfg {
        let mut b = DfgBuilder::new("gradient");
        let i: Vec<_> = (0..5).map(|k| b.input(format!("i{k}"))).collect();
        let s0 = b.op(Op::Sub, &[i[0], i[2]]).unwrap();
        let s1 = b.op(Op::Sub, &[i[1], i[2]]).unwrap();
        let s2 = b.op(Op::Sub, &[i[2], i[3]]).unwrap();
        let s3 = b.op(Op::Sub, &[i[2], i[4]]).unwrap();
        let q: Vec<_> = [s0, s1, s2, s3]
            .iter()
            .map(|&v| b.op(Op::Square, &[v]).unwrap())
            .collect();
        let a0 = b.op(Op::Add, &[q[0], q[1]]).unwrap();
        let a1 = b.op(Op::Add, &[q[2], q[3]]).unwrap();
        let a2 = b.op(Op::Add, &[a0, a1]).unwrap();
        b.output("o0", a2);
        b.build().unwrap()
    }

    #[test]
    fn gradient_matches_hand_computation() {
        let dfg = gradient();
        // inputs: 1, 2, 3, 4, 5
        // subs: 1-3=-2, 2-3=-1, 3-4=-1, 3-5=-2 -> squares 4,1,1,4 -> 5+5=10
        let out = evaluate(&dfg, &[1, 2, 3, 4, 5].map(Value::new)).unwrap();
        assert_eq!(out, vec![Value::new(10)]);
    }

    #[test]
    fn input_count_is_checked() {
        let dfg = gradient();
        assert!(matches!(
            evaluate(&dfg, &[Value::new(1)]),
            Err(DfgError::InputCountMismatch {
                expected: 5,
                found: 1
            })
        ));
    }

    #[test]
    fn context_exposes_intermediate_values() {
        let dfg = gradient();
        let ctx = EvalContext::run(&dfg, &[1, 2, 3, 4, 5].map(Value::new)).unwrap();
        // First SUB node is node id 5 (after the 5 inputs).
        let first_sub = dfg.op_ids()[0];
        assert_eq!(ctx.value(first_sub), Some(Value::new(-2)));
        assert_eq!(ctx.value(NodeId::from_raw(999)), None);
    }

    #[test]
    fn stream_evaluation_processes_each_record() {
        let dfg = gradient();
        let records = vec![
            [1, 2, 3, 4, 5].map(Value::new).to_vec(),
            [0, 0, 0, 0, 0].map(Value::new).to_vec(),
            [5, 4, 3, 2, 1].map(Value::new).to_vec(),
        ];
        let outputs = evaluate_stream(&dfg, &records).unwrap();
        assert_eq!(outputs.len(), 3);
        assert_eq!(outputs[1], vec![Value::new(0)]);
        assert_eq!(outputs[0], outputs[2]); // symmetric inputs
    }

    #[test]
    fn constants_participate_in_evaluation() {
        let mut b = DfgBuilder::new("affine");
        let x = b.input("x");
        let three = b.constant(Value::new(3));
        let seven = b.constant(Value::new(7));
        let m = b.op(Op::Mul, &[x, three]).unwrap();
        let r = b.op(Op::Add, &[m, seven]).unwrap();
        b.output("y", r);
        let dfg = b.build().unwrap();
        assert_eq!(
            evaluate(&dfg, &[Value::new(5)]).unwrap(),
            vec![Value::new(22)]
        );
    }

    #[test]
    fn multiple_outputs_keep_stream_order() {
        let mut b = DfgBuilder::new("two-out");
        let a = b.input("a");
        let c = b.input("b");
        let sum = b.op(Op::Add, &[a, c]).unwrap();
        let diff = b.op(Op::Sub, &[a, c]).unwrap();
        b.output("sum", sum);
        b.output("diff", diff);
        let dfg = b.build().unwrap();
        assert_eq!(
            evaluate(&dfg, &[Value::new(9), Value::new(4)]).unwrap(),
            vec![Value::new(13), Value::new(5)]
        );
    }
}
