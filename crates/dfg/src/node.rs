//! Nodes of the data flow graph.

use std::fmt;

use crate::op::Op;
use crate::value::Value;

/// Identifier of a node within its owning [`crate::Dfg`].
///
/// Node ids are dense indices assigned in creation order; they are only
/// meaningful relative to the graph that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Creates a node id from a raw index.
    ///
    /// Mostly useful in tests; normal code obtains ids from
    /// [`crate::DfgBuilder`] or [`crate::Dfg`] accessors.
    pub const fn from_raw(index: u32) -> Self {
        NodeId(index)
    }

    /// Returns the raw dense index of this node.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The role a node plays in the graph.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum NodeKind {
    /// A kernel input, delivered over the streaming interface (one word per
    /// invocation).
    Input {
        /// Position within the input stream (0-based).
        position: usize,
    },
    /// A compile-time constant, materialised as an instruction immediate.
    Const {
        /// The constant value.
        value: Value,
    },
    /// An arithmetic/logic operation executed by a functional unit.
    Operation {
        /// The operation.
        op: Op,
        /// Operand node ids, in operand order.
        operands: Vec<NodeId>,
    },
    /// A kernel output, written to the output FIFO.
    Output {
        /// Position within the output stream (0-based).
        position: usize,
        /// The operation node whose value is emitted.
        source: NodeId,
    },
}

impl NodeKind {
    /// Returns `true` for [`NodeKind::Operation`] nodes.
    pub const fn is_operation(&self) -> bool {
        matches!(self, NodeKind::Operation { .. })
    }

    /// Returns `true` for [`NodeKind::Input`] nodes.
    pub const fn is_input(&self) -> bool {
        matches!(self, NodeKind::Input { .. })
    }

    /// Returns `true` for [`NodeKind::Const`] nodes.
    pub const fn is_const(&self) -> bool {
        matches!(self, NodeKind::Const { .. })
    }

    /// Returns `true` for [`NodeKind::Output`] nodes.
    pub const fn is_output(&self) -> bool {
        matches!(self, NodeKind::Output { .. })
    }
}

/// A node of the data flow graph: its id, an optional user-facing name and
/// its [`NodeKind`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Node {
    pub(crate) id: NodeId,
    pub(crate) name: String,
    pub(crate) kind: NodeKind,
}

impl Node {
    /// The node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's user-visible name (e.g. `SUB_N6` in the paper's figures).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node's kind.
    pub fn kind(&self) -> &NodeKind {
        &self.kind
    }

    /// Operand ids for operation and output nodes; empty otherwise.
    pub fn operands(&self) -> &[NodeId] {
        match &self.kind {
            NodeKind::Operation { operands, .. } => operands,
            NodeKind::Output { source, .. } => std::slice::from_ref(source),
            _ => &[],
        }
    }

    /// The operation of an operation node, if any.
    pub fn op(&self) -> Option<Op> {
        match &self.kind {
            NodeKind::Operation { op, .. } => Some(*op),
            _ => None,
        }
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            NodeKind::Input { position } => write!(f, "{}: input[{position}]", self.name),
            NodeKind::Const { value } => write!(f, "{}: const {value}", self.name),
            NodeKind::Operation { op, operands } => {
                write!(f, "{}: {op}(", self.name)?;
                for (i, operand) in operands.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{operand}")?;
                }
                write!(f, ")")
            }
            NodeKind::Output { position, source } => {
                write!(f, "{}: output[{position}] <- {source}", self.name)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display_and_index() {
        let id = NodeId::from_raw(7);
        assert_eq!(id.to_string(), "n7");
        assert_eq!(id.index(), 7);
    }

    #[test]
    fn kind_predicates_are_mutually_exclusive() {
        let kinds = [
            NodeKind::Input { position: 0 },
            NodeKind::Const {
                value: Value::new(1),
            },
            NodeKind::Operation {
                op: Op::Add,
                operands: vec![NodeId::from_raw(0), NodeId::from_raw(1)],
            },
            NodeKind::Output {
                position: 0,
                source: NodeId::from_raw(2),
            },
        ];
        for (i, kind) in kinds.iter().enumerate() {
            let flags = [
                kind.is_input(),
                kind.is_const(),
                kind.is_operation(),
                kind.is_output(),
            ];
            assert_eq!(flags.iter().filter(|f| **f).count(), 1);
            assert!(flags[i]);
        }
    }

    #[test]
    fn node_display_shows_structure() {
        let node = Node {
            id: NodeId::from_raw(3),
            name: "SUB_N6".into(),
            kind: NodeKind::Operation {
                op: Op::Sub,
                operands: vec![NodeId::from_raw(0), NodeId::from_raw(2)],
            },
        };
        assert_eq!(node.to_string(), "SUB_N6: SUB(n0, n2)");
        assert_eq!(node.operands(), &[NodeId::from_raw(0), NodeId::from_raw(2)]);
        assert_eq!(node.op(), Some(Op::Sub));
    }
}
