//! Structural analyses over a [`Dfg`]: dependence levels, depth, critical
//! path and slack.
//!
//! The ASAP level assignment is the basis of the paper's scheduling for the
//! `[14]`, V1 and V2 overlays ("nodes at the same (horizontal) level [are]
//! allocated to a single FU"), and the critical path length is the overlay
//! depth those variants require. The ALAP levels and per-node slack are used
//! by the fixed-depth greedy scheduler for the write-back variants (V3–V5).

use std::collections::HashMap;

use crate::graph::Dfg;
use crate::node::NodeId;

/// Result of running the level/critical-path analyses over a graph.
///
/// Levels are 1-based over *operation* nodes: an operation whose operands are
/// all inputs or constants has ASAP level 1; the graph depth is the maximum
/// ASAP level (the paper's `Depth` column in Table III).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DfgAnalysis {
    asap: HashMap<NodeId, usize>,
    alap: HashMap<NodeId, usize>,
    depth: usize,
    critical_path: CriticalPath,
    levels: Vec<Vec<NodeId>>,
}

/// A longest dependence chain through the operation nodes of a graph.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CriticalPath {
    nodes: Vec<NodeId>,
}

impl CriticalPath {
    /// The nodes on the path, from the earliest operation to the latest.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Path length in operations (equal to the graph depth).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the path is empty (a graph with no operations).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Summary statistics of a DFG, matching the columns the paper reports for
/// its benchmark set (Table III) plus a few extra shape metrics.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DfgStats {
    /// Kernel name.
    pub name: String,
    /// Number of stream inputs.
    pub inputs: usize,
    /// Number of stream outputs.
    pub outputs: usize,
    /// Number of operation nodes.
    pub ops: usize,
    /// Graph depth (critical path length in operations).
    pub depth: usize,
    /// Largest number of operations in any single ASAP level.
    pub max_level_width: usize,
    /// Average operation fan-out.
    pub avg_fanout: f64,
}

impl DfgAnalysis {
    /// Runs the analyses over `dfg`.
    ///
    /// This is equivalent to [`Dfg::analysis`]; the free constructor exists so
    /// the analysis can also be run on borrowed graphs in generic code.
    pub fn new(dfg: &Dfg) -> Self {
        let mut asap: HashMap<NodeId, usize> = HashMap::new();
        // Creation order is topological, so a single forward sweep suffices.
        for node in dfg.nodes().iter().filter(|n| n.kind().is_operation()) {
            let level = node
                .operands()
                .iter()
                .filter_map(|operand| asap.get(operand).copied())
                .max()
                .unwrap_or(0)
                + 1;
            asap.insert(node.id(), level);
        }
        let depth = asap.values().copied().max().unwrap_or(0);

        // ALAP: backward sweep over the reverse topological order.
        let mut alap: HashMap<NodeId, usize> = HashMap::new();
        for node in dfg.nodes().iter().rev().filter(|n| n.kind().is_operation()) {
            let consumer_min = dfg
                .consumers(node.id())
                .into_iter()
                .filter_map(|c| alap.get(&c).copied())
                .map(|l| l - 1)
                .min();
            alap.insert(node.id(), consumer_min.unwrap_or(depth));
        }

        let mut levels = vec![Vec::new(); depth];
        for node in dfg.nodes().iter().filter(|n| n.kind().is_operation()) {
            levels[asap[&node.id()] - 1].push(node.id());
        }

        let critical_path = Self::extract_critical_path(dfg, &asap, depth);

        DfgAnalysis {
            asap,
            alap,
            depth,
            critical_path,
            levels,
        }
    }

    fn extract_critical_path(
        dfg: &Dfg,
        asap: &HashMap<NodeId, usize>,
        depth: usize,
    ) -> CriticalPath {
        if depth == 0 {
            return CriticalPath::default();
        }
        // Start from any deepest node and walk backwards through an operand
        // whose level is exactly one less.
        let mut current = *asap
            .iter()
            .find(|(_, &level)| level == depth)
            .map(|(id, _)| id)
            .expect("a node exists at the maximum level");
        let mut path = vec![current];
        for level in (1..depth).rev() {
            let parent = dfg
                .node_unchecked(current)
                .operands()
                .iter()
                .copied()
                .find(|operand| asap.get(operand) == Some(&level))
                .expect("critical path parent exists at each level");
            path.push(parent);
            current = parent;
        }
        path.reverse();
        CriticalPath { nodes: path }
    }

    /// ASAP level of an operation node (1-based), or `None` for non-operation
    /// nodes.
    pub fn asap_level(&self, id: NodeId) -> Option<usize> {
        self.asap.get(&id).copied()
    }

    /// ALAP level of an operation node (1-based), or `None` for non-operation
    /// nodes.
    pub fn alap_level(&self, id: NodeId) -> Option<usize> {
        self.alap.get(&id).copied()
    }

    /// Scheduling slack of an operation node (`alap − asap`), or `None` for
    /// non-operation nodes.
    pub fn slack(&self, id: NodeId) -> Option<usize> {
        Some(self.alap_level(id)? - self.asap_level(id)?)
    }

    /// Graph depth: the number of ASAP levels, equal to the critical path
    /// length. This is the paper's `Depth` column and the number of FUs the
    /// non-write-back overlays need.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The operation nodes grouped by ASAP level; `levels()[k]` holds the
    /// nodes of level `k + 1`.
    pub fn levels(&self) -> &[Vec<NodeId>] {
        &self.levels
    }

    /// Operation nodes at a given 1-based level.
    pub fn level(&self, level: usize) -> &[NodeId] {
        self.levels
            .get(level.wrapping_sub(1))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// One longest dependence chain through the graph.
    pub fn critical_path(&self) -> &CriticalPath {
        &self.critical_path
    }

    /// Nodes whose slack is zero — every one of them lies on *some* longest
    /// path, so moving them between scheduling stages changes the depth.
    pub fn zero_slack_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self
            .asap
            .keys()
            .copied()
            .filter(|&id| self.slack(id) == Some(0))
            .collect();
        nodes.sort_by_key(|id| id.index());
        nodes
    }

    /// Computes the summary statistics for `dfg` (which must be the graph the
    /// analysis was built from).
    pub fn stats(&self, dfg: &Dfg) -> DfgStats {
        let op_ids = dfg.op_ids();
        let total_fanout: usize = op_ids.iter().map(|&id| dfg.fanout(id)).sum();
        DfgStats {
            name: dfg.name().to_owned(),
            inputs: dfg.num_inputs(),
            outputs: dfg.num_outputs(),
            ops: op_ids.len(),
            depth: self.depth,
            max_level_width: self.levels.iter().map(Vec::len).max().unwrap_or(0),
            avg_fanout: if op_ids.is_empty() {
                0.0
            } else {
                total_fanout as f64 / op_ids.len() as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfgBuilder;
    use crate::op::Op;

    /// The paper's gradient benchmark (Fig. 2b): 5 inputs, 11 ops, depth 4.
    fn gradient() -> Dfg {
        let mut b = DfgBuilder::new("gradient");
        let i: Vec<_> = (0..5).map(|k| b.input(format!("i{k}"))).collect();
        let s0 = b.op(Op::Sub, &[i[0], i[2]]).unwrap();
        let s1 = b.op(Op::Sub, &[i[1], i[2]]).unwrap();
        let s2 = b.op(Op::Sub, &[i[2], i[3]]).unwrap();
        let s3 = b.op(Op::Sub, &[i[2], i[4]]).unwrap();
        let q: Vec<_> = [s0, s1, s2, s3]
            .iter()
            .map(|&v| b.op(Op::Square, &[v]).unwrap())
            .collect();
        let a0 = b.op(Op::Add, &[q[0], q[1]]).unwrap();
        let a1 = b.op(Op::Add, &[q[2], q[3]]).unwrap();
        let a2 = b.op(Op::Add, &[a0, a1]).unwrap();
        b.output("o0", a2);
        b.build().unwrap()
    }

    #[test]
    fn gradient_depth_matches_paper() {
        let dfg = gradient();
        let analysis = dfg.analysis();
        assert_eq!(analysis.depth(), 4);
        assert_eq!(analysis.levels().len(), 4);
        assert_eq!(analysis.level(1).len(), 4); // 4 SUB
        assert_eq!(analysis.level(2).len(), 4); // 4 SQR
        assert_eq!(analysis.level(3).len(), 2); // 2 ADD
        assert_eq!(analysis.level(4).len(), 1); // final ADD
    }

    #[test]
    fn critical_path_has_depth_length_and_is_a_chain() {
        let dfg = gradient();
        let analysis = dfg.analysis();
        let path = analysis.critical_path();
        assert_eq!(path.len(), 4);
        for window in path.nodes().windows(2) {
            let (parent, child) = (window[0], window[1]);
            assert!(dfg.node_unchecked(child).operands().contains(&parent));
        }
    }

    #[test]
    fn slack_is_zero_on_critical_path_nodes() {
        let dfg = gradient();
        let analysis = dfg.analysis();
        for &id in analysis.critical_path().nodes() {
            assert_eq!(analysis.slack(id), Some(0));
        }
    }

    #[test]
    fn alap_never_precedes_asap() {
        let dfg = gradient();
        let analysis = dfg.analysis();
        for id in dfg.op_ids() {
            assert!(analysis.alap_level(id).unwrap() >= analysis.asap_level(id).unwrap());
        }
    }

    #[test]
    fn stats_summarise_the_graph() {
        let dfg = gradient();
        let stats = dfg.analysis().stats(&dfg);
        assert_eq!(stats.inputs, 5);
        assert_eq!(stats.outputs, 1);
        assert_eq!(stats.ops, 11);
        assert_eq!(stats.depth, 4);
        assert_eq!(stats.max_level_width, 4);
        assert!(stats.avg_fanout > 0.0);
    }

    #[test]
    fn chain_graph_has_full_depth_and_no_slack() {
        let mut b = DfgBuilder::new("chain");
        let x = b.input("x");
        let mut prev = b.op(Op::Square, &[x]).unwrap();
        for _ in 0..6 {
            prev = b.op(Op::Square, &[prev]).unwrap();
        }
        b.output("o", prev);
        let dfg = b.build().unwrap();
        let analysis = dfg.analysis();
        assert_eq!(analysis.depth(), 7);
        assert_eq!(analysis.zero_slack_nodes().len(), 7);
    }

    #[test]
    fn non_operation_nodes_have_no_level() {
        let dfg = gradient();
        let analysis = dfg.analysis();
        let input = dfg.inputs()[0];
        assert_eq!(analysis.asap_level(input), None);
        assert_eq!(analysis.slack(input), None);
    }
}
