//! Error type for DFG construction, validation and evaluation.

use std::fmt;

use crate::node::NodeId;
use crate::op::Op;

/// Errors produced while building, validating or evaluating a [`crate::Dfg`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DfgError {
    /// An operation was applied to the wrong number of operands.
    ArityMismatch {
        /// The operation in question.
        op: Op,
        /// Operand count the operation requires.
        expected: usize,
        /// Operand count actually supplied.
        found: usize,
    },
    /// A node referenced an operand id that does not exist in the graph.
    UnknownNode(NodeId),
    /// An unknown operation mnemonic was parsed.
    UnknownOp(String),
    /// A node other than an operation was marked as an output source.
    InvalidOutputSource(NodeId),
    /// An operand refers to an output node (outputs are sinks).
    OperandIsOutput(NodeId),
    /// The graph contains a dependence cycle involving the given node.
    CyclicDependency(NodeId),
    /// The graph has no output nodes, so it computes nothing observable.
    NoOutputs,
    /// The graph has an input that is never consumed by any operation.
    UnusedInput(NodeId),
    /// Evaluation was invoked with the wrong number of input values.
    InputCountMismatch {
        /// Number of graph inputs.
        expected: usize,
        /// Number of values supplied.
        found: usize,
    },
    /// Two nodes were given the same user-visible name.
    DuplicateName(String),
}

impl fmt::Display for DfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfgError::ArityMismatch {
                op,
                expected,
                found,
            } => write!(
                f,
                "operation {op} expects {expected} operand(s) but {found} were supplied"
            ),
            DfgError::UnknownNode(id) => write!(f, "node {id} does not exist in the graph"),
            DfgError::UnknownOp(name) => write!(f, "unknown operation mnemonic `{name}`"),
            DfgError::InvalidOutputSource(id) => {
                write!(f, "output must be driven by an operation node, got {id}")
            }
            DfgError::OperandIsOutput(id) => {
                write!(f, "output node {id} cannot be used as an operand")
            }
            DfgError::CyclicDependency(id) => {
                write!(f, "dependence cycle detected involving node {id}")
            }
            DfgError::NoOutputs => write!(f, "graph has no output nodes"),
            DfgError::UnusedInput(id) => write!(f, "input node {id} is never used"),
            DfgError::InputCountMismatch { expected, found } => write!(
                f,
                "graph has {expected} input(s) but {found} value(s) were supplied"
            ),
            DfgError::DuplicateName(name) => write!(f, "duplicate node name `{name}`"),
        }
    }
}

impl std::error::Error for DfgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let err = DfgError::ArityMismatch {
            op: Op::Add,
            expected: 2,
            found: 3,
        };
        let msg = err.to_string();
        assert!(msg.contains("ADD"));
        assert!(msg.contains('2'));
        assert!(msg.contains('3'));

        let err = DfgError::UnknownOp("frobnicate".into());
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<DfgError>();
    }
}
