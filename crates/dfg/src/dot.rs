//! Graphviz DOT export of a [`Dfg`].
//!
//! Useful to visually compare a constructed benchmark graph with the figures
//! in the paper (Fig. 2b, Fig. 4).

use std::fmt::Write as _;

use crate::graph::Dfg;
use crate::node::NodeKind;

/// Renders `dfg` as a Graphviz `digraph`.
///
/// Inputs are drawn as ellipses, constants as diamonds, operations as boxes
/// and outputs as double circles; edges follow data flow (operand → consumer).
///
/// # Example
///
/// ```
/// use overlay_dfg::{dot, DfgBuilder, Op};
///
/// # fn main() -> Result<(), overlay_dfg::DfgError> {
/// let mut b = DfgBuilder::new("tiny");
/// let x = b.input("x");
/// let q = b.op(Op::Square, &[x])?;
/// b.output("y", q);
/// let rendered = dot::to_dot(&b.build()?);
/// assert!(rendered.starts_with("digraph"));
/// assert!(rendered.contains("SQR"));
/// # Ok(())
/// # }
/// ```
pub fn to_dot(dfg: &Dfg) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(dfg.name()));
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [fontname=\"Helvetica\"];");
    for node in dfg.nodes() {
        let (shape, label) = match node.kind() {
            NodeKind::Input { position } => ("ellipse", format!("I{position}\\n{}", node.name())),
            NodeKind::Const { value } => ("diamond", format!("{value}")),
            NodeKind::Operation { op, .. } => ("box", format!("{op}\\n{}", node.name())),
            NodeKind::Output { position, .. } => {
                ("doublecircle", format!("O{position}\\n{}", node.name()))
            }
        };
        let _ = writeln!(
            out,
            "  {} [shape={shape}, label=\"{}\"];",
            node.id(),
            escape(&label)
        );
    }
    for node in dfg.nodes() {
        for operand in node.operands() {
            let _ = writeln!(out, "  {} -> {};", operand, node.id());
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfgBuilder;
    use crate::op::Op;
    use crate::value::Value;

    #[test]
    fn dot_contains_every_node_and_edge() {
        let mut b = DfgBuilder::new("dot-test");
        let x = b.input("x");
        let y = b.input("y");
        let c = b.constant(Value::new(2));
        let s = b.op(Op::Add, &[x, y]).unwrap();
        let m = b.op(Op::Mul, &[s, c]).unwrap();
        b.output("o", m);
        let dfg = b.build().unwrap();
        let dot = to_dot(&dfg);
        for node in dfg.nodes() {
            assert!(dot.contains(&node.id().to_string()));
        }
        // edges: x->s, y->s, s->m, c->m, m->output = 5
        assert_eq!(dot.matches(" -> ").count(), 5);
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn quotes_in_names_are_escaped() {
        let mut b = DfgBuilder::new("quote\"name");
        let x = b.input("x");
        let q = b.op(Op::Square, &[x]).unwrap();
        b.output("o", q);
        let dot = to_dot(&b.build().unwrap());
        assert!(dot.contains("quote\\\"name"));
    }
}
