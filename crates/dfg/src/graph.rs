//! The data flow graph container.

use std::collections::HashMap;

use crate::analysis::DfgAnalysis;
use crate::error::DfgError;
use crate::node::{Node, NodeId, NodeKind};
use crate::op::Op;

/// A kernel data flow graph.
///
/// Nodes are stored densely and identified by [`NodeId`]. The graph is
/// directed and — by construction through [`crate::DfgBuilder`] — acyclic:
/// operands must already exist when an operation node is created, which is
/// exactly the feed-forward structure the linear overlay exploits.
///
/// A `Dfg` is immutable once built; all scheduling and simulation passes
/// treat it as read-only input.
///
/// # Example
///
/// ```
/// use overlay_dfg::{DfgBuilder, Op};
///
/// # fn main() -> Result<(), overlay_dfg::DfgError> {
/// let mut b = DfgBuilder::new("axpy");
/// let a = b.input("a");
/// let x = b.input("x");
/// let y = b.input("y");
/// let ax = b.op(Op::Mul, &[a, x])?;
/// let r = b.op(Op::Add, &[ax, y])?;
/// b.output("r", r);
/// let dfg = b.build()?;
/// assert_eq!(dfg.num_ops(), 2);
/// assert_eq!(dfg.consumers(ax), vec![r]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Dfg {
    pub(crate) name: String,
    pub(crate) nodes: Vec<Node>,
    pub(crate) inputs: Vec<NodeId>,
    pub(crate) outputs: Vec<NodeId>,
}

impl Dfg {
    /// The kernel name (e.g. `"gradient"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All nodes, in creation order (which is also a topological order).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Looks up a node by id.
    ///
    /// # Errors
    ///
    /// Returns [`DfgError::UnknownNode`] if the id is not part of this graph.
    pub fn node(&self, id: NodeId) -> Result<&Node, DfgError> {
        self.nodes.get(id.index()).ok_or(DfgError::UnknownNode(id))
    }

    /// Looks up a node by id, panicking on an unknown id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph. Use [`Dfg::node`] for a
    /// fallible lookup.
    pub fn node_unchecked(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Ids of the input nodes, in stream order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Ids of the output nodes, in stream order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Ids of all operation nodes, in creation (topological) order.
    pub fn op_ids(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.kind.is_operation())
            .map(|n| n.id)
            .collect()
    }

    /// Ids of all constant nodes.
    pub fn const_ids(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.kind.is_const())
            .map(|n| n.id)
            .collect()
    }

    /// Number of kernel inputs (the `I` in the paper's `I/O` column).
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of kernel outputs (the `O` in the paper's `I/O` column).
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of operation nodes (the paper's `#Ops` column).
    pub fn num_ops(&self) -> usize {
        self.nodes.iter().filter(|n| n.kind.is_operation()).count()
    }

    /// Total node count including inputs, constants and outputs.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Returns the number of operation nodes using each [`Op`].
    pub fn op_histogram(&self) -> HashMap<Op, usize> {
        let mut histogram = HashMap::new();
        for node in &self.nodes {
            if let Some(op) = node.op() {
                *histogram.entry(op).or_insert(0) += 1;
            }
        }
        histogram
    }

    /// Ids of the nodes that consume `id` as an operand (operation nodes and
    /// output nodes), in creation order.
    pub fn consumers(&self, id: NodeId) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.operands().contains(&id))
            .map(|n| n.id)
            .collect()
    }

    /// Fan-out of a node: how many operand slots reference it.
    pub fn fanout(&self, id: NodeId) -> usize {
        self.nodes
            .iter()
            .map(|n| n.operands().iter().filter(|&&o| o == id).count())
            .sum()
    }

    /// Whether a value is consumed by any output node.
    pub fn feeds_output(&self, id: NodeId) -> bool {
        self.outputs
            .iter()
            .any(|&out| self.node_unchecked(out).operands().contains(&id))
    }

    /// A topological ordering of the operation nodes.
    ///
    /// Because the builder only allows operands that already exist, creation
    /// order is a valid topological order; this method re-derives it from the
    /// edges so it remains correct for graphs deserialised from elsewhere.
    ///
    /// # Errors
    ///
    /// Returns [`DfgError::CyclicDependency`] if the graph contains a cycle.
    pub fn topological_ops(&self) -> Result<Vec<NodeId>, DfgError> {
        let mut in_degree: HashMap<NodeId, usize> = HashMap::new();
        let mut ready: Vec<NodeId> = Vec::new();
        for node in self.nodes.iter().filter(|n| n.kind.is_operation()) {
            // Count *distinct* operation operands: a node that uses the same
            // producer twice still only waits for it once.
            let mut producers: Vec<NodeId> = node
                .operands()
                .iter()
                .copied()
                .filter(|&o| self.node_unchecked(o).kind.is_operation())
                .collect();
            producers.sort_unstable();
            producers.dedup();
            let degree = producers.len();
            if degree == 0 {
                ready.push(node.id);
            } else {
                in_degree.insert(node.id, degree);
            }
        }
        let mut order = Vec::with_capacity(self.num_ops());
        while let Some(id) = ready.pop() {
            order.push(id);
            for consumer in self.consumers(id) {
                if let Some(degree) = in_degree.get_mut(&consumer) {
                    *degree -= 1;
                    if *degree == 0 {
                        in_degree.remove(&consumer);
                        ready.push(consumer);
                    }
                }
            }
        }
        if let Some((&stuck, _)) = in_degree.iter().next() {
            return Err(DfgError::CyclicDependency(stuck));
        }
        order.sort_by_key(|id| id.index());
        Ok(order)
    }

    /// Validates structural invariants: operand ids exist, arities match,
    /// outputs are driven by operations, the graph is acyclic, there is at
    /// least one output, and every input feeds some operation.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`DfgError`].
    pub fn validate(&self) -> Result<(), DfgError> {
        for node in &self.nodes {
            for &operand in node.operands() {
                let operand_node = self.node(operand)?;
                if operand_node.kind.is_output() {
                    return Err(DfgError::OperandIsOutput(operand));
                }
            }
            match &node.kind {
                NodeKind::Operation { op, operands } if operands.len() != op.arity() => {
                    return Err(DfgError::ArityMismatch {
                        op: *op,
                        expected: op.arity(),
                        found: operands.len(),
                    });
                }
                NodeKind::Output { source, .. } if !self.node(*source)?.kind.is_operation() => {
                    return Err(DfgError::InvalidOutputSource(*source));
                }
                _ => {}
            }
        }
        if self.outputs.is_empty() {
            return Err(DfgError::NoOutputs);
        }
        for &input in &self.inputs {
            if self.fanout(input) == 0 {
                return Err(DfgError::UnusedInput(input));
            }
        }
        self.topological_ops()?;
        Ok(())
    }

    /// Runs the standard analyses (levels, depth, critical path) over the
    /// graph. See [`DfgAnalysis`].
    pub fn analysis(&self) -> DfgAnalysis {
        DfgAnalysis::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfgBuilder;
    use crate::value::Value;

    fn diamond() -> Dfg {
        let mut b = DfgBuilder::new("diamond");
        let x = b.input("x");
        let y = b.input("y");
        let s = b.op(Op::Add, &[x, y]).unwrap();
        let p = b.op(Op::Mul, &[x, y]).unwrap();
        let d = b.op(Op::Sub, &[s, p]).unwrap();
        b.output("out", d);
        b.build().unwrap()
    }

    #[test]
    fn counts_reflect_structure() {
        let dfg = diamond();
        assert_eq!(dfg.num_inputs(), 2);
        assert_eq!(dfg.num_outputs(), 1);
        assert_eq!(dfg.num_ops(), 3);
        assert_eq!(dfg.num_nodes(), 6);
    }

    #[test]
    fn consumers_and_fanout() {
        let dfg = diamond();
        let x = dfg.inputs()[0];
        assert_eq!(dfg.fanout(x), 2);
        assert_eq!(dfg.consumers(x).len(), 2);
        let last_op = *dfg.op_ids().last().unwrap();
        assert!(dfg.feeds_output(last_op));
        assert_eq!(dfg.fanout(last_op), 1);
    }

    #[test]
    fn op_histogram_counts_each_operation() {
        let dfg = diamond();
        let histogram = dfg.op_histogram();
        assert_eq!(histogram[&Op::Add], 1);
        assert_eq!(histogram[&Op::Mul], 1);
        assert_eq!(histogram[&Op::Sub], 1);
    }

    #[test]
    fn topological_order_respects_dependencies() {
        let dfg = diamond();
        let order = dfg.topological_ops().unwrap();
        assert_eq!(order.len(), 3);
        let position: HashMap<_, _> = order.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        for &id in &order {
            for &operand in dfg.node_unchecked(id).operands() {
                if dfg.node_unchecked(operand).kind.is_operation() {
                    assert!(position[&operand] < position[&id]);
                }
            }
        }
    }

    #[test]
    fn validate_accepts_well_formed_graph() {
        assert!(diamond().validate().is_ok());
    }

    #[test]
    fn validate_rejects_unused_input() {
        let mut b = DfgBuilder::new("unused");
        let x = b.input("x");
        let _unused = b.input("y");
        let sq = b.op(Op::Square, &[x]).unwrap();
        b.output("o", sq);
        let dfg = b.build_unvalidated();
        assert!(matches!(dfg.validate(), Err(DfgError::UnusedInput(_))));
    }

    #[test]
    fn validate_rejects_missing_outputs() {
        let mut b = DfgBuilder::new("no-out");
        let x = b.input("x");
        let _sq = b.op(Op::Square, &[x]).unwrap();
        let dfg = b.build_unvalidated();
        assert_eq!(dfg.validate(), Err(DfgError::NoOutputs));
    }

    #[test]
    fn node_lookup_rejects_foreign_ids() {
        let dfg = diamond();
        assert!(dfg.node(NodeId::from_raw(999)).is_err());
    }

    #[test]
    fn constants_are_listed() {
        let mut b = DfgBuilder::new("with-const");
        let x = b.input("x");
        let c = b.constant(Value::new(3));
        let m = b.op(Op::Mul, &[x, c]).unwrap();
        b.output("o", m);
        let dfg = b.build().unwrap();
        assert_eq!(dfg.const_ids().len(), 1);
    }
}
