//! Data-flow-graph (DFG) intermediate representation for the linear
//! time-multiplexed FPGA overlay.
//!
//! The overlay tool flow described in the paper maps *compute kernels* onto a
//! chain of time-multiplexed functional units (FUs). The kernel is first
//! expressed as a data flow graph whose nodes are arithmetic operations and
//! whose edges are value dependencies, exactly like Fig. 2b ("gradient") and
//! Fig. 4 ("qspline") in the paper. This crate provides that IR together with
//! the analyses the scheduler needs:
//!
//! * [`Dfg`] — the graph itself (inputs, constants, operations, outputs),
//! * [`DfgBuilder`] — an ergonomic way to construct graphs by hand,
//! * [`analysis`] — level assignment (ASAP/ALAP), depth, critical path,
//! * [`eval`] — a reference evaluator used to check the cycle-accurate
//!   simulator for functional correctness,
//! * [`generate`] — synthetic DFG generation for stress and property tests,
//! * [`dot`] — Graphviz export for debugging and documentation.
//!
//! # Example
//!
//! Build the four-level "gradient" kernel of Fig. 2b and query its shape:
//!
//! ```
//! use overlay_dfg::{DfgBuilder, Op};
//!
//! # fn main() -> Result<(), overlay_dfg::DfgError> {
//! let mut b = DfgBuilder::new("gradient");
//! let i: Vec<_> = (0..5).map(|k| b.input(format!("i{k}"))).collect();
//! let s0 = b.op(Op::Sub, &[i[0], i[2]])?;
//! let s1 = b.op(Op::Sub, &[i[1], i[2]])?;
//! let s2 = b.op(Op::Sub, &[i[2], i[3]])?;
//! let s3 = b.op(Op::Sub, &[i[2], i[4]])?;
//! let q: Vec<_> = [s0, s1, s2, s3]
//!     .iter()
//!     .map(|&v| b.op(Op::Square, &[v]))
//!     .collect::<Result<_, _>>()?;
//! let a0 = b.op(Op::Add, &[q[0], q[1]])?;
//! let a1 = b.op(Op::Add, &[q[2], q[3]])?;
//! let a2 = b.op(Op::Add, &[a0, a1])?;
//! b.output("o0", a2);
//! let dfg = b.build()?;
//!
//! assert_eq!(dfg.num_inputs(), 5);
//! assert_eq!(dfg.num_outputs(), 1);
//! assert_eq!(dfg.num_ops(), 11);
//! assert_eq!(dfg.analysis().depth(), 4);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod builder;
pub mod dot;
pub mod error;
pub mod eval;
pub mod generate;
pub mod graph;
pub mod node;
pub mod op;
pub mod value;

pub use analysis::{CriticalPath, DfgAnalysis, DfgStats};
pub use builder::DfgBuilder;
pub use error::DfgError;
pub use eval::{evaluate, evaluate_stream, EvalContext};
pub use generate::{DfgGenerator, GeneratorConfig};
pub use graph::Dfg;
pub use node::{Node, NodeId, NodeKind};
pub use op::Op;
pub use value::Value;
