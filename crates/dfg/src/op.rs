//! Arithmetic/logic operations supported by the time-multiplexed functional
//! unit.
//!
//! The FU datapath is a DSP48E1-style block: a pre-adder, a 25×18 multiplier
//! and a 48-bit ALU. The operation repertoire below is the subset exposed by
//! the overlay instruction set (Sec. III of the paper); every operation maps
//! onto a single pass through the DSP pipeline.

use std::fmt;
use std::str::FromStr;

use crate::error::DfgError;
use crate::value::Value;

/// An operation performed by a DFG node / FU instruction.
///
/// All binary operations take two register operands; [`Op::Square`], [`Op::Abs`]
/// and [`Op::Neg`] are unary (the square is implemented by routing the same
/// operand to both multiplier ports, as in the paper's `SQR` nodes).
///
/// # Example
///
/// ```
/// use overlay_dfg::{Op, Value};
///
/// assert_eq!(Op::Mul.arity(), 2);
/// assert_eq!(Op::Square.arity(), 1);
/// assert_eq!(Op::Add.apply(&[Value::new(2), Value::new(3)]).unwrap(), Value::new(5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Op {
    /// Two's-complement addition (`a + b`).
    Add,
    /// Two's-complement subtraction (`a - b`).
    Sub,
    /// Truncated 32-bit multiplication (`a * b`).
    Mul,
    /// Squaring (`a * a`); the paper's `SQR` nodes.
    Square,
    /// Unary negation (`-a`).
    Neg,
    /// Absolute value (`|a|`).
    Abs,
    /// Signed minimum (`min(a, b)`).
    Min,
    /// Signed maximum (`max(a, b)`).
    Max,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (`a << (b & 31)`).
    Shl,
    /// Arithmetic shift right (`a >> (b & 31)`).
    Shr,
    /// Multiply-accumulate (`a * b + c`): three-operand DSP operation.
    MulAdd,
    /// Pass-through / copy (`a`); used for forwarding values across stages.
    Mov,
}

impl Op {
    /// All operations, in a stable order (useful for exhaustive tests).
    pub const ALL: [Op; 15] = [
        Op::Add,
        Op::Sub,
        Op::Mul,
        Op::Square,
        Op::Neg,
        Op::Abs,
        Op::Min,
        Op::Max,
        Op::And,
        Op::Or,
        Op::Xor,
        Op::Shl,
        Op::Shr,
        Op::MulAdd,
        Op::Mov,
    ];

    /// Number of operands the operation consumes (1, 2 or 3).
    pub const fn arity(self) -> usize {
        match self {
            Op::Square | Op::Neg | Op::Abs | Op::Mov => 1,
            Op::MulAdd => 3,
            _ => 2,
        }
    }

    /// Whether swapping the two operands leaves the result unchanged.
    ///
    /// Only meaningful for binary operations; unary and ternary operations
    /// return `false`.
    pub const fn is_commutative(self) -> bool {
        matches!(
            self,
            Op::Add | Op::Mul | Op::Min | Op::Max | Op::And | Op::Or | Op::Xor
        )
    }

    /// Whether the operation uses the DSP multiplier (as opposed to only the
    /// ALU). Multiplier operations constrain the INMODE encoding used by the
    /// instruction set.
    pub const fn uses_multiplier(self) -> bool {
        matches!(self, Op::Mul | Op::Square | Op::MulAdd)
    }

    /// The short upper-case mnemonic used in schedules and the assembler
    /// (e.g. `SUB`, `SQR`), matching the paper's node labels.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            Op::Add => "ADD",
            Op::Sub => "SUB",
            Op::Mul => "MUL",
            Op::Square => "SQR",
            Op::Neg => "NEG",
            Op::Abs => "ABS",
            Op::Min => "MIN",
            Op::Max => "MAX",
            Op::And => "AND",
            Op::Or => "OR",
            Op::Xor => "XOR",
            Op::Shl => "SHL",
            Op::Shr => "SHR",
            Op::MulAdd => "MAC",
            Op::Mov => "MOV",
        }
    }

    /// Applies the operation to a slice of operand values.
    ///
    /// # Errors
    ///
    /// Returns [`DfgError::ArityMismatch`] if `operands.len()` differs from
    /// [`Op::arity`].
    pub fn apply(self, operands: &[Value]) -> Result<Value, DfgError> {
        if operands.len() != self.arity() {
            return Err(DfgError::ArityMismatch {
                op: self,
                expected: self.arity(),
                found: operands.len(),
            });
        }
        let a = operands[0];
        Ok(match self {
            Op::Add => a.wrapping_add(operands[1]),
            Op::Sub => a.wrapping_sub(operands[1]),
            Op::Mul => a.wrapping_mul(operands[1]),
            Op::Square => a.wrapping_mul(a),
            Op::Neg => a.wrapping_neg(),
            Op::Abs => a.wrapping_abs(),
            Op::Min => a.min(operands[1]),
            Op::Max => a.max(operands[1]),
            Op::And => a.and(operands[1]),
            Op::Or => a.or(operands[1]),
            Op::Xor => a.xor(operands[1]),
            Op::Shl => a.shl(operands[1]),
            Op::Shr => a.shr(operands[1]),
            Op::MulAdd => a.wrapping_mul(operands[1]).wrapping_add(operands[2]),
            Op::Mov => a,
        })
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

impl FromStr for Op {
    type Err = DfgError;

    /// Parses a mnemonic (case-insensitive), e.g. `"sub"` or `"SQR"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let upper = s.to_ascii_uppercase();
        Op::ALL
            .iter()
            .copied()
            .find(|op| op.mnemonic() == upper)
            .ok_or_else(|| DfgError::UnknownOp(s.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_operand_count() {
        for op in Op::ALL {
            let operands = vec![Value::new(3); op.arity()];
            assert!(op.apply(&operands).is_ok(), "{op} should accept its arity");
            let wrong = vec![Value::new(3); op.arity() + 1];
            assert!(op.apply(&wrong).is_err(), "{op} should reject wrong arity");
        }
    }

    #[test]
    fn commutative_ops_are_order_insensitive() {
        let a = Value::new(7);
        let b = Value::new(-13);
        for op in Op::ALL.iter().filter(|op| op.is_commutative()) {
            assert_eq!(op.apply(&[a, b]).unwrap(), op.apply(&[b, a]).unwrap());
        }
    }

    #[test]
    fn non_commutative_sub_is_order_sensitive() {
        let a = Value::new(7);
        let b = Value::new(3);
        assert_ne!(
            Op::Sub.apply(&[a, b]).unwrap(),
            Op::Sub.apply(&[b, a]).unwrap()
        );
    }

    #[test]
    fn square_is_self_multiplication() {
        let a = Value::new(-9);
        assert_eq!(
            Op::Square.apply(&[a]).unwrap(),
            Op::Mul.apply(&[a, a]).unwrap()
        );
    }

    #[test]
    fn mul_add_combines_multiplier_and_alu() {
        let result = Op::MulAdd
            .apply(&[Value::new(3), Value::new(4), Value::new(5)])
            .unwrap();
        assert_eq!(result, Value::new(17));
    }

    #[test]
    fn mnemonics_round_trip_through_from_str() {
        for op in Op::ALL {
            let parsed: Op = op.mnemonic().parse().unwrap();
            assert_eq!(parsed, op);
            let parsed_lower: Op = op.mnemonic().to_ascii_lowercase().parse().unwrap();
            assert_eq!(parsed_lower, op);
        }
        assert!("bogus".parse::<Op>().is_err());
    }

    #[test]
    fn multiplier_classification() {
        assert!(Op::Mul.uses_multiplier());
        assert!(Op::Square.uses_multiplier());
        assert!(Op::MulAdd.uses_multiplier());
        assert!(!Op::Add.uses_multiplier());
        assert!(!Op::Shl.uses_multiplier());
    }
}
