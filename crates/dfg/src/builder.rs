//! Incremental construction of [`Dfg`] graphs.

use std::collections::HashSet;

use crate::error::DfgError;
use crate::graph::Dfg;
use crate::node::{Node, NodeId, NodeKind};
use crate::op::Op;
use crate::value::Value;

/// Builder for [`Dfg`] graphs.
///
/// Nodes are created in dependence order: an operation can only reference
/// operands that already exist, which guarantees the resulting graph is
/// acyclic (the feed-forward property the linear overlay relies on).
///
/// # Example
///
/// ```
/// use overlay_dfg::{DfgBuilder, Op, Value};
///
/// # fn main() -> Result<(), overlay_dfg::DfgError> {
/// let mut b = DfgBuilder::new("scale-offset");
/// let x = b.input("x");
/// let gain = b.constant(Value::new(5));
/// let offset = b.constant(Value::new(-3));
/// let scaled = b.op(Op::Mul, &[x, gain])?;
/// let result = b.op(Op::Add, &[scaled, offset])?;
/// b.output("y", result);
/// let dfg = b.build()?;
/// assert_eq!(dfg.name(), "scale-offset");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DfgBuilder {
    name: String,
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
    used_names: HashSet<String>,
}

impl DfgBuilder {
    /// Starts building a graph for the kernel called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        DfgBuilder {
            name: name.into(),
            nodes: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            used_names: HashSet::new(),
        }
    }

    fn next_id(&self) -> NodeId {
        NodeId(self.nodes.len() as u32)
    }

    fn unique_name(&mut self, requested: String) -> String {
        if self.used_names.insert(requested.clone()) {
            return requested;
        }
        let mut counter = 1usize;
        loop {
            let candidate = format!("{requested}_{counter}");
            if self.used_names.insert(candidate.clone()) {
                return candidate;
            }
            counter += 1;
        }
    }

    /// Adds a kernel input node and returns its id.
    ///
    /// Inputs are delivered to the first functional unit in stream order, so
    /// the order of `input` calls defines the input stream layout.
    pub fn input(&mut self, name: impl Into<String>) -> NodeId {
        let id = self.next_id();
        let position = self.inputs.len();
        let name = self.unique_name(name.into());
        self.nodes.push(Node {
            id,
            name,
            kind: NodeKind::Input { position },
        });
        self.inputs.push(id);
        id
    }

    /// Adds a constant node and returns its id.
    ///
    /// Constants become instruction immediates rather than streamed data.
    pub fn constant(&mut self, value: Value) -> NodeId {
        let id = self.next_id();
        let name = self.unique_name(format!("c{}", value.get()));
        self.nodes.push(Node {
            id,
            name,
            kind: NodeKind::Const { value },
        });
        id
    }

    /// Adds an operation node with the given operands and returns its id.
    ///
    /// # Errors
    ///
    /// * [`DfgError::ArityMismatch`] if the operand count does not match the
    ///   operation's arity.
    /// * [`DfgError::UnknownNode`] if an operand id was not created by this
    ///   builder.
    /// * [`DfgError::OperandIsOutput`] if an operand refers to an output node.
    pub fn op(&mut self, op: Op, operands: &[NodeId]) -> Result<NodeId, DfgError> {
        let name = format!("{}_N{}", op.mnemonic(), self.nodes.len());
        self.named_op(name, op, operands)
    }

    /// Adds an operation node with an explicit name (e.g. to mirror the
    /// paper's `SUB_N6` labels).
    ///
    /// # Errors
    ///
    /// Same as [`DfgBuilder::op`].
    pub fn named_op(
        &mut self,
        name: impl Into<String>,
        op: Op,
        operands: &[NodeId],
    ) -> Result<NodeId, DfgError> {
        if operands.len() != op.arity() {
            return Err(DfgError::ArityMismatch {
                op,
                expected: op.arity(),
                found: operands.len(),
            });
        }
        for &operand in operands {
            let node = self
                .nodes
                .get(operand.index())
                .ok_or(DfgError::UnknownNode(operand))?;
            if node.kind.is_output() {
                return Err(DfgError::OperandIsOutput(operand));
            }
        }
        let id = self.next_id();
        let name = self.unique_name(name.into());
        self.nodes.push(Node {
            id,
            name,
            kind: NodeKind::Operation {
                op,
                operands: operands.to_vec(),
            },
        });
        Ok(id)
    }

    /// Marks the value produced by `source` as a kernel output.
    ///
    /// Output order defines the output stream layout. If `source` is not an
    /// operation node the error is reported by [`DfgBuilder::build`] /
    /// [`Dfg::validate`].
    pub fn output(&mut self, name: impl Into<String>, source: NodeId) -> NodeId {
        let id = self.next_id();
        let position = self.outputs.len();
        let name = self.unique_name(name.into());
        self.nodes.push(Node {
            id,
            name,
            kind: NodeKind::Output { position, source },
        });
        self.outputs.push(id);
        id
    }

    /// Number of nodes created so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no nodes have been created yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Finishes construction, validating the graph.
    ///
    /// # Errors
    ///
    /// Returns any error reported by [`Dfg::validate`].
    pub fn build(self) -> Result<Dfg, DfgError> {
        let dfg = self.build_unvalidated();
        dfg.validate()?;
        Ok(dfg)
    }

    /// Finishes construction without validating.
    ///
    /// Useful in tests that deliberately construct malformed graphs; regular
    /// code should prefer [`DfgBuilder::build`].
    pub fn build_unvalidated(self) -> Dfg {
        Dfg {
            name: self.name,
            nodes: self.nodes,
            inputs: self.inputs,
            outputs: self.outputs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_dense_ids() {
        let mut b = DfgBuilder::new("dense");
        let a = b.input("a");
        let c = b.constant(Value::new(7));
        let s = b.op(Op::Add, &[a, c]).unwrap();
        let o = b.output("o", s);
        assert_eq!(a.index(), 0);
        assert_eq!(c.index(), 1);
        assert_eq!(s.index(), 2);
        assert_eq!(o.index(), 3);
        assert_eq!(b.len(), 4);
        assert!(!b.is_empty());
    }

    #[test]
    fn duplicate_names_are_made_unique() {
        let mut b = DfgBuilder::new("dup");
        let a = b.input("x");
        let c = b.input("x");
        let s = b.op(Op::Add, &[a, c]).unwrap();
        b.output("x", s);
        let dfg = b.build().unwrap();
        let names: HashSet<_> = dfg.nodes().iter().map(|n| n.name().to_owned()).collect();
        assert_eq!(names.len(), dfg.num_nodes());
    }

    #[test]
    fn op_rejects_wrong_arity() {
        let mut b = DfgBuilder::new("arity");
        let a = b.input("a");
        assert!(matches!(
            b.op(Op::Add, &[a]),
            Err(DfgError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn op_rejects_unknown_operand() {
        let mut b = DfgBuilder::new("unknown");
        let bogus = NodeId::from_raw(42);
        assert!(matches!(
            b.op(Op::Neg, &[bogus]),
            Err(DfgError::UnknownNode(_))
        ));
    }

    #[test]
    fn op_rejects_output_operand() {
        let mut b = DfgBuilder::new("out-operand");
        let a = b.input("a");
        let sq = b.op(Op::Square, &[a]).unwrap();
        let out = b.output("o", sq);
        assert!(matches!(
            b.op(Op::Neg, &[out]),
            Err(DfgError::OperandIsOutput(_))
        ));
    }

    #[test]
    fn build_validates_output_source() {
        let mut b = DfgBuilder::new("bad-output");
        let a = b.input("a");
        let a2 = b.input("b");
        let s = b.op(Op::Add, &[a, a2]).unwrap();
        let _ok = b.output("ok", s);
        // Driving an output directly from an input is rejected: the overlay
        // always routes outputs through an FU.
        b.output("bad", a);
        assert!(matches!(b.build(), Err(DfgError::InvalidOutputSource(_))));
    }
}
