//! Recursive-descent parser for the kernel language.
//!
//! Grammar (in rough EBNF):
//!
//! ```text
//! kernel     := 'kernel' IDENT '(' [ IDENT { ',' IDENT } ] ')' '{' { stmt } '}'
//! stmt       := ( 'let' | 'out' ) IDENT '=' expr ';'
//! expr       := or
//! or         := xor { '|' xor }
//! xor        := and { '^' and }
//! and        := shift { '&' shift }
//! shift      := add { ( '<<' | '>>' ) add }
//! add        := mul { ( '+' | '-' ) mul }
//! mul        := unary { '*' unary }
//! unary      := '-' unary | primary
//! primary    := NUMBER | IDENT [ '(' [ expr { ',' expr } ] ')' ] | '(' expr ')'
//! ```

use crate::ast::{BinaryOp, Expr, Kernel, Stmt, UnaryFn};
use crate::error::FrontendError;
use crate::lexer::{Lexer, Token, TokenKind};

/// Parses a complete kernel definition from source text.
///
/// # Errors
///
/// Returns a [`FrontendError`] describing the first lexical or syntactic
/// problem encountered.
///
/// # Example
///
/// ```
/// use overlay_frontend::parse_kernel;
///
/// # fn main() -> Result<(), overlay_frontend::FrontendError> {
/// let kernel = parse_kernel("kernel f(a, b) { out y = a * b + 1; }")?;
/// assert_eq!(kernel.name, "f");
/// assert_eq!(kernel.params, vec!["a", "b"]);
/// assert_eq!(kernel.body.len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse_kernel(source: &str) -> Result<Kernel, FrontendError> {
    let tokens = Lexer::new(source).tokenize()?;
    Parser::new(tokens).kernel()
}

struct Parser {
    tokens: Vec<Token>,
    index: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, index: 0 }
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.index.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let token = self.peek().clone();
        if self.index < self.tokens.len() - 1 {
            self.index += 1;
        }
        token
    }

    fn unexpected(&self, expected: &str) -> FrontendError {
        let token = self.peek();
        if token.kind == TokenKind::Eof {
            FrontendError::UnexpectedEof {
                expected: expected.to_owned(),
            }
        } else {
            FrontendError::UnexpectedToken {
                found: token.kind.describe(),
                expected: expected.to_owned(),
                span: token.span,
            }
        }
    }

    fn expect(&mut self, kind: &TokenKind, expected: &str) -> Result<Token, FrontendError> {
        if &self.peek().kind == kind {
            Ok(self.bump())
        } else {
            Err(self.unexpected(expected))
        }
    }

    fn expect_ident(&mut self, expected: &str) -> Result<String, FrontendError> {
        match &self.peek().kind {
            TokenKind::Ident(name) => {
                let name = name.clone();
                self.bump();
                Ok(name)
            }
            _ => Err(self.unexpected(expected)),
        }
    }

    fn kernel(&mut self) -> Result<Kernel, FrontendError> {
        self.expect(&TokenKind::Kernel, "`kernel`")?;
        let name = self.expect_ident("kernel name")?;
        self.expect(&TokenKind::LParen, "`(`")?;
        let mut params = Vec::new();
        if self.peek().kind != TokenKind::RParen {
            loop {
                params.push(self.expect_ident("parameter name")?);
                if self.peek().kind == TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen, "`)`")?;
        self.expect(&TokenKind::LBrace, "`{`")?;
        let mut body = Vec::new();
        while self.peek().kind != TokenKind::RBrace {
            body.push(self.stmt()?);
        }
        self.expect(&TokenKind::RBrace, "`}`")?;
        self.expect(&TokenKind::Eof, "end of input")?;
        Ok(Kernel { name, params, body })
    }

    fn stmt(&mut self) -> Result<Stmt, FrontendError> {
        let is_out = match self.peek().kind {
            TokenKind::Let => false,
            TokenKind::Out => true,
            _ => return Err(self.unexpected("`let` or `out`")),
        };
        self.bump();
        let name = self.expect_ident("binding name")?;
        self.expect(&TokenKind::Equals, "`=`")?;
        let expr = self.expr()?;
        self.expect(&TokenKind::Semicolon, "`;`")?;
        Ok(if is_out {
            Stmt::Out { name, expr }
        } else {
            Stmt::Let { name, expr }
        })
    }

    fn expr(&mut self) -> Result<Expr, FrontendError> {
        self.binary_level(0)
    }

    /// Precedence-climbing over the binary operator levels, lowest first.
    fn binary_level(&mut self, level: usize) -> Result<Expr, FrontendError> {
        const LEVELS: &[&[(TokenKind, BinaryOp)]] = &[
            &[(TokenKind::Pipe, BinaryOp::Or)],
            &[(TokenKind::Caret, BinaryOp::Xor)],
            &[(TokenKind::Ampersand, BinaryOp::And)],
            &[
                (TokenKind::ShiftLeft, BinaryOp::Shl),
                (TokenKind::ShiftRight, BinaryOp::Shr),
            ],
            &[
                (TokenKind::Plus, BinaryOp::Add),
                (TokenKind::Minus, BinaryOp::Sub),
            ],
            &[(TokenKind::Star, BinaryOp::Mul)],
        ];
        if level == LEVELS.len() {
            return self.unary();
        }
        let mut lhs = self.binary_level(level + 1)?;
        loop {
            let op = LEVELS[level]
                .iter()
                .find(|(kind, _)| kind == &self.peek().kind)
                .map(|(_, op)| *op);
            let Some(op) = op else { break };
            self.bump();
            let rhs = self.binary_level(level + 1)?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, FrontendError> {
        if self.peek().kind == TokenKind::Minus {
            self.bump();
            let inner = self.unary()?;
            // Fold negation of literals immediately so `-5` is a literal.
            if let Expr::Literal(value) = inner {
                return Ok(Expr::Literal(value.wrapping_neg()));
            }
            return Ok(Expr::Neg(Box::new(inner)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, FrontendError> {
        let token = self.peek().clone();
        match token.kind {
            TokenKind::Number(value) => {
                self.bump();
                Ok(Expr::Literal(value))
            }
            TokenKind::LParen => {
                self.bump();
                let expr = self.expr()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(expr)
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.peek().kind == TokenKind::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek().kind != TokenKind::RParen {
                        loop {
                            args.push(self.expr()?);
                            if self.peek().kind == TokenKind::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen, "`)`")?;
                    let function =
                        UnaryFn::by_name(&name).ok_or(FrontendError::UnknownFunction {
                            name: name.clone(),
                            span: token.span,
                        })?;
                    if args.len() != function.arity() {
                        return Err(FrontendError::WrongArgumentCount {
                            name,
                            expected: function.arity(),
                            found: args.len(),
                        });
                    }
                    Ok(Expr::Call { function, args })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            _ => Err(self.unexpected("an expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_parameters_and_statements() {
        let kernel = parse_kernel("kernel k(a, b, c) { let t = a + b; out y = t * c; }").unwrap();
        assert_eq!(kernel.params, vec!["a", "b", "c"]);
        assert_eq!(kernel.body.len(), 2);
        assert_eq!(kernel.output_names(), vec!["y"]);
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let kernel = parse_kernel("kernel k(a, b, c) { out y = a + b * c; }").unwrap();
        let Stmt::Out { expr, .. } = &kernel.body[0] else {
            panic!("expected out statement");
        };
        match expr {
            Expr::Binary {
                op: BinaryOp::Add,
                rhs,
                ..
            } => assert!(matches!(
                **rhs,
                Expr::Binary {
                    op: BinaryOp::Mul,
                    ..
                }
            )),
            other => panic!("unexpected tree {other:?}"),
        }
    }

    #[test]
    fn parentheses_override_precedence() {
        let kernel = parse_kernel("kernel k(a, b, c) { out y = (a + b) * c; }").unwrap();
        let Stmt::Out { expr, .. } = &kernel.body[0] else {
            panic!("expected out statement");
        };
        assert!(matches!(
            expr,
            Expr::Binary {
                op: BinaryOp::Mul,
                ..
            }
        ));
    }

    #[test]
    fn negative_literals_fold_into_literal() {
        let kernel = parse_kernel("kernel k(a) { out y = a + -3; }").unwrap();
        let Stmt::Out { expr, .. } = &kernel.body[0] else {
            panic!("expected out statement");
        };
        match expr {
            Expr::Binary { rhs, .. } => assert_eq!(**rhs, Expr::Literal(-3)),
            other => panic!("unexpected tree {other:?}"),
        }
    }

    #[test]
    fn intrinsic_calls_check_arity() {
        assert!(parse_kernel("kernel k(a) { out y = sqr(a); }").is_ok());
        assert!(matches!(
            parse_kernel("kernel k(a) { out y = sqr(a, a); }"),
            Err(FrontendError::WrongArgumentCount { .. })
        ));
        assert!(matches!(
            parse_kernel("kernel k(a) { out y = hypot(a, a); }"),
            Err(FrontendError::UnknownFunction { .. })
        ));
    }

    #[test]
    fn missing_semicolon_is_a_syntax_error() {
        assert!(matches!(
            parse_kernel("kernel k(a) { out y = a }"),
            Err(FrontendError::UnexpectedToken { .. })
        ));
    }

    #[test]
    fn truncated_input_reports_eof() {
        assert!(matches!(
            parse_kernel("kernel k(a) { out y = a + "),
            Err(FrontendError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn empty_parameter_list_is_allowed() {
        let kernel = parse_kernel("kernel constant() { out y = 3 * 4; }").unwrap();
        assert!(kernel.params.is_empty());
    }

    #[test]
    fn shift_and_bitwise_operators_parse() {
        let kernel = parse_kernel("kernel k(a, b) { out y = (a << 2) & b | 7 ^ b >> 1; }");
        assert!(kernel.is_ok());
    }
}
