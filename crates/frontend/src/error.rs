//! Front-end error reporting.

use std::fmt;

use overlay_dfg::DfgError;

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub column: usize,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// Errors produced while lexing, parsing or lowering kernel source.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FrontendError {
    /// An unexpected character was encountered while lexing.
    UnexpectedChar {
        /// The offending character.
        ch: char,
        /// Where it occurred.
        span: Span,
    },
    /// A numeric literal did not fit in a 32-bit signed integer.
    LiteralOutOfRange {
        /// The literal text.
        text: String,
        /// Where it occurred.
        span: Span,
    },
    /// The parser found a token it did not expect.
    UnexpectedToken {
        /// Human-readable description of what was found.
        found: String,
        /// Human-readable description of what was expected.
        expected: String,
        /// Where it occurred.
        span: Span,
    },
    /// The source ended in the middle of a construct.
    UnexpectedEof {
        /// Human-readable description of what was expected.
        expected: String,
    },
    /// An expression referenced a variable that has not been defined.
    UndefinedVariable {
        /// The variable name.
        name: String,
    },
    /// A `let` or parameter rebinds an existing name.
    DuplicateDefinition {
        /// The duplicated name.
        name: String,
    },
    /// A kernel has no `out` statement.
    NoOutputs {
        /// The kernel name.
        kernel: String,
    },
    /// An unknown intrinsic function was called.
    UnknownFunction {
        /// The function name.
        name: String,
        /// Where it occurred.
        span: Span,
    },
    /// An intrinsic function was called with the wrong number of arguments.
    WrongArgumentCount {
        /// The function name.
        name: String,
        /// Arguments the function requires.
        expected: usize,
        /// Arguments supplied.
        found: usize,
    },
    /// The lowered graph violated a DFG invariant.
    Dfg(DfgError),
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontendError::UnexpectedChar { ch, span } => {
                write!(f, "unexpected character `{ch}` at {span}")
            }
            FrontendError::LiteralOutOfRange { text, span } => {
                write!(f, "literal `{text}` at {span} does not fit in 32 bits")
            }
            FrontendError::UnexpectedToken {
                found,
                expected,
                span,
            } => write!(f, "expected {expected} but found {found} at {span}"),
            FrontendError::UnexpectedEof { expected } => {
                write!(f, "unexpected end of input, expected {expected}")
            }
            FrontendError::UndefinedVariable { name } => {
                write!(f, "use of undefined variable `{name}`")
            }
            FrontendError::DuplicateDefinition { name } => {
                write!(f, "`{name}` is defined more than once")
            }
            FrontendError::NoOutputs { kernel } => {
                write!(f, "kernel `{kernel}` has no `out` statement")
            }
            FrontendError::UnknownFunction { name, span } => {
                write!(f, "unknown function `{name}` at {span}")
            }
            FrontendError::WrongArgumentCount {
                name,
                expected,
                found,
            } => write!(
                f,
                "function `{name}` expects {expected} argument(s) but {found} were supplied"
            ),
            FrontendError::Dfg(err) => write!(f, "invalid data flow graph: {err}"),
        }
    }
}

impl std::error::Error for FrontendError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrontendError::Dfg(err) => Some(err),
            _ => None,
        }
    }
}

impl From<DfgError> for FrontendError {
    fn from(err: DfgError) -> Self {
        FrontendError::Dfg(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location_information() {
        let err = FrontendError::UnexpectedChar {
            ch: '@',
            span: Span { line: 3, column: 7 },
        };
        assert_eq!(err.to_string(), "unexpected character `@` at 3:7");
    }

    #[test]
    fn dfg_errors_are_wrapped_with_source() {
        use std::error::Error;
        let err = FrontendError::from(DfgError::NoOutputs);
        assert!(err.source().is_some());
        assert!(err.to_string().contains("invalid data flow graph"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync + 'static>() {}
        assert_bounds::<FrontendError>();
    }
}
