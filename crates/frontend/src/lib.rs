//! Kernel-language front-end for the linear time-multiplexed FPGA overlay.
//!
//! The paper uses the HercuLeS HLS tool to turn a C description of a compute
//! kernel into a data flow graph (DFG). This crate plays that role with a
//! small, self-contained arithmetic kernel language:
//!
//! ```text
//! kernel gradient(i0, i1, i2, i3, i4) {
//!     let d0 = i0 - i2;
//!     let d1 = i1 - i2;
//!     let d2 = i2 - i3;
//!     let d3 = i2 - i4;
//!     out g = sqr(d0) + sqr(d1) + (sqr(d2) + sqr(d3));
//! }
//! ```
//!
//! The pipeline is: [`lexer`] → [`parser`] → [`ast`] → [`lower`] → a
//! [`overlay_dfg::Dfg`] ready for scheduling. The [`kernels`] module contains
//! the benchmark suite used in the paper's evaluation (Table III) plus the
//! worked 'gradient' example, together with the characteristics and II
//! figures the paper reports for them.
//!
//! # Example
//!
//! ```
//! use overlay_frontend::compile_kernel;
//!
//! # fn main() -> Result<(), overlay_frontend::FrontendError> {
//! let dfg = compile_kernel(
//!     "kernel axpy(a, x, y) { out r = a * x + y; }",
//! )?;
//! assert_eq!(dfg.name(), "axpy");
//! assert_eq!(dfg.num_ops(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ast;
pub mod error;
pub mod kernels;
pub mod lexer;
pub mod lower;
pub mod parser;

pub use ast::{BinaryOp, Expr, Kernel, Stmt, UnaryFn};
pub use error::FrontendError;
pub use kernels::{Benchmark, PaperRecord};
pub use lexer::{Lexer, Token, TokenKind};
pub use lower::{lower_kernel, LowerOptions};
pub use parser::parse_kernel;

use overlay_dfg::Dfg;

/// Compiles kernel source text all the way to a [`Dfg`] using default
/// lowering options.
///
/// # Errors
///
/// Returns a [`FrontendError`] if the source fails to lex, parse or lower
/// (e.g. use of an undefined variable).
///
/// # Example
///
/// ```
/// use overlay_frontend::compile_kernel;
///
/// # fn main() -> Result<(), overlay_frontend::FrontendError> {
/// let dfg = compile_kernel("kernel square(x) { out y = sqr(x); }")?;
/// assert_eq!(dfg.num_ops(), 1);
/// # Ok(())
/// # }
/// ```
pub fn compile_kernel(source: &str) -> Result<Dfg, FrontendError> {
    compile_kernel_with(source, &LowerOptions::default())
}

/// Compiles kernel source text to a [`Dfg`] with explicit [`LowerOptions`]
/// (constant folding, common-subexpression elimination, square detection).
///
/// # Errors
///
/// Same as [`compile_kernel`].
pub fn compile_kernel_with(source: &str, options: &LowerOptions) -> Result<Dfg, FrontendError> {
    let kernel = parse_kernel(source)?;
    lower_kernel(&kernel, options)
}
