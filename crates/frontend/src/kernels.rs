//! The benchmark kernel suite used in the paper's evaluation.
//!
//! The paper evaluates eight compute kernels taken from the DSP-overlay
//! benchmark set of Jain et al. (FCCM'15) and the polynomial test suite of
//! Bini & Mourrain (Table III), plus the 'gradient' medical-imaging kernel
//! used as the worked example (Fig. 2). The original C sources are not
//! reproduced in the paper, so this module reconstructs each kernel so that
//! its DFG characteristics (inputs/outputs, operation count, depth) match the
//! published values in Table III; the reconstruction choices are documented
//! in `DESIGN.md` and the achieved-vs-published numbers in `EXPERIMENTS.md`.
//!
//! Kernels with a natural closed-form expression (`gradient`, `chebyshev`,
//! `mibench`, `sgfilter`) are written in the kernel DSL and compiled through
//! the full front-end; the polynomial-evaluation kernels (`qspline`,
//! `poly5`–`poly8`) are built structurally with [`overlay_dfg::DfgBuilder`]
//! using a layered construction that mirrors their published shape.

use overlay_dfg::{Dfg, DfgBuilder, NodeId, Op};

use crate::compile_kernel;
use crate::error::FrontendError;

/// The paper's per-benchmark reference data: DFG characteristics and the
/// initiation intervals reported in Table III (plus the 'gradient' figures
/// quoted in the running text).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRecord {
    /// Number of kernel inputs.
    pub inputs: usize,
    /// Number of kernel outputs.
    pub outputs: usize,
    /// Number of operation nodes.
    pub ops: usize,
    /// DFG depth (critical path length).
    pub depth: usize,
    /// II of the baseline overlay of reference `[14]`.
    pub ii_baseline: f64,
    /// II of the V1 overlay (rotating register file).
    pub ii_v1: f64,
    /// II of the V2 overlay (dual datapath).
    pub ii_v2: f64,
    /// II of the V3 overlay (write-back, IWP = 5, fixed depth 8).
    pub ii_v3: f64,
    /// II of the V4 overlay (write-back, IWP = 4, fixed depth 8).
    pub ii_v4: f64,
}

/// The benchmark kernels evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Benchmark {
    /// Medical-imaging 'gradient' kernel (Fig. 2), the paper's worked example.
    Gradient,
    /// Chebyshev polynomial evaluation (1 input, pure dependence chain).
    Chebyshev,
    /// MiBench-derived arithmetic kernel (3 inputs).
    Mibench,
    /// Quadratic-spline kernel (Fig. 4): a multiplication cascade feeding an
    /// addition chain.
    Qspline,
    /// Savitzky–Golay filter kernel (2 inputs).
    Sgfilter,
    /// Polynomial test-suite kernel `poly5`.
    Poly5,
    /// Polynomial test-suite kernel `poly6`.
    Poly6,
    /// Polynomial test-suite kernel `poly7`.
    Poly7,
    /// Polynomial test-suite kernel `poly8`.
    Poly8,
}

impl Benchmark {
    /// Every benchmark, including the worked 'gradient' example.
    pub const ALL: [Benchmark; 9] = [
        Benchmark::Gradient,
        Benchmark::Chebyshev,
        Benchmark::Mibench,
        Benchmark::Qspline,
        Benchmark::Sgfilter,
        Benchmark::Poly5,
        Benchmark::Poly6,
        Benchmark::Poly7,
        Benchmark::Poly8,
    ];

    /// The eight benchmarks of the paper's Table III, in table order.
    pub const TABLE3: [Benchmark; 8] = [
        Benchmark::Chebyshev,
        Benchmark::Mibench,
        Benchmark::Qspline,
        Benchmark::Sgfilter,
        Benchmark::Poly5,
        Benchmark::Poly6,
        Benchmark::Poly7,
        Benchmark::Poly8,
    ];

    /// The kernel name as used in the paper.
    pub const fn name(self) -> &'static str {
        match self {
            Benchmark::Gradient => "gradient",
            Benchmark::Chebyshev => "chebyshev",
            Benchmark::Mibench => "mibench",
            Benchmark::Qspline => "qspline",
            Benchmark::Sgfilter => "sgfilter",
            Benchmark::Poly5 => "poly5",
            Benchmark::Poly6 => "poly6",
            Benchmark::Poly7 => "poly7",
            Benchmark::Poly8 => "poly8",
        }
    }

    /// The kernel-DSL source, for benchmarks expressed in the DSL.
    ///
    /// The polynomial kernels (`qspline`, `poly5`–`poly8`) are constructed
    /// structurally instead and return `None`.
    pub const fn source(self) -> Option<&'static str> {
        match self {
            Benchmark::Gradient => Some(GRADIENT_SRC),
            Benchmark::Chebyshev => Some(CHEBYSHEV_SRC),
            Benchmark::Mibench => Some(MIBENCH_SRC),
            Benchmark::Sgfilter => Some(SGFILTER_SRC),
            _ => None,
        }
    }

    /// Builds the benchmark's data flow graph.
    ///
    /// # Errors
    ///
    /// Propagates front-end errors; for the built-in sources this never fails
    /// in practice (covered by tests).
    pub fn dfg(self) -> Result<Dfg, FrontendError> {
        match self {
            Benchmark::Gradient
            | Benchmark::Chebyshev
            | Benchmark::Mibench
            | Benchmark::Sgfilter => compile_kernel(self.source().expect("DSL source exists")),
            Benchmark::Qspline => Ok(layered_kernel("qspline", 7, &[8, 6, 4, 3, 1, 1, 1, 1], 4)?),
            Benchmark::Poly5 => Ok(layered_kernel("poly5", 3, &[5, 4, 4, 3, 3, 3, 2, 2, 1], 6)?),
            Benchmark::Poly6 => Ok(layered_kernel(
                "poly6",
                3,
                &[6, 6, 5, 5, 4, 4, 4, 4, 3, 2, 1],
                8,
            )?),
            Benchmark::Poly7 => Ok(layered_kernel(
                "poly7",
                3,
                &[5, 4, 4, 4, 3, 3, 3, 3, 3, 3, 2, 1, 1],
                10,
            )?),
            Benchmark::Poly8 => Ok(layered_kernel(
                "poly8",
                3,
                &[4, 4, 4, 3, 3, 3, 3, 3, 2, 2, 1],
                8,
            )?),
        }
    }

    /// The paper's reference figures for this benchmark.
    ///
    /// The II values come from Table III; the 'gradient' figures come from
    /// the running text of Sections III–IV (its V3/V4 entries equal the V1
    /// value because its depth fits the fixed-depth overlay and ASAP
    /// scheduling is used, as the paper notes for shallow kernels).
    pub const fn paper_record(self) -> PaperRecord {
        match self {
            Benchmark::Gradient => record(5, 1, 11, 4, 11.0, 6.0, 3.0, 6.0, 6.0),
            Benchmark::Chebyshev => record(1, 1, 7, 7, 6.0, 4.0, 2.0, 4.0, 4.0),
            Benchmark::Mibench => record(3, 1, 13, 6, 14.0, 8.0, 4.0, 8.0, 8.0),
            Benchmark::Qspline => record(7, 1, 25, 8, 19.0, 11.0, 5.5, 11.0, 11.0),
            Benchmark::Sgfilter => record(2, 1, 18, 9, 13.0, 8.0, 4.0, 8.0, 8.0),
            Benchmark::Poly5 => record(3, 1, 27, 9, 19.0, 11.0, 5.5, 11.0, 11.0),
            Benchmark::Poly6 => record(3, 1, 44, 11, 25.0, 14.0, 7.0, 13.0, 12.0),
            Benchmark::Poly7 => record(3, 1, 39, 13, 24.0, 14.0, 7.0, 20.0, 17.0),
            Benchmark::Poly8 => record(3, 1, 32, 11, 21.0, 12.0, 6.0, 16.0, 14.0),
        }
    }
}

#[allow(clippy::too_many_arguments)] // one positional row per Table III column
const fn record(
    inputs: usize,
    outputs: usize,
    ops: usize,
    depth: usize,
    ii_baseline: f64,
    ii_v1: f64,
    ii_v2: f64,
    ii_v3: f64,
    ii_v4: f64,
) -> PaperRecord {
    PaperRecord {
        inputs,
        outputs,
        ops,
        depth,
        ii_baseline,
        ii_v1,
        ii_v2,
        ii_v3,
        ii_v4,
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

const GRADIENT_SRC: &str = "\
kernel gradient(i0, i1, i2, i3, i4) {
    let d0 = i0 - i2;
    let d1 = i1 - i2;
    let d2 = i2 - i3;
    let d3 = i2 - i4;
    let s0 = sqr(d0);
    let s1 = sqr(d1);
    let s2 = sqr(d2);
    let s3 = sqr(d3);
    let a0 = s0 + s1;
    let a1 = s2 + s3;
    out g = a0 + a1;
}
";

const CHEBYSHEV_SRC: &str = "\
# Chebyshev polynomial T6 evaluated in Horner form over u = x^2:
#   T6(x) = ((32 u - 48) u + 18) u - 1
kernel chebyshev(x) {
    let u = x * x;
    out y = ((u * 32 - 48) * u + 18) * u - 1;
}
";

const MIBENCH_SRC: &str = "\
kernel mibench(a, b, c) {
    let t1 = a * b;
    let t2 = b * c;
    let t3 = a * c;
    let t4 = a + b;
    let t5 = b + c;
    let u1 = t1 + t2;
    let u2 = t3 * t4;
    let u3 = sqr(t5);
    let v1 = u1 - u2;
    let v2 = u3 + u1;
    let w1 = v1 * v2;
    let x1 = w1 + u3;
    out y = x1 * v1;
}
";

const SGFILTER_SRC: &str = "\
kernel sgfilter(x, h) {
    let t1 = sqr(x);
    let t2 = x * h;
    let t3 = sqr(h);
    let u1 = t1 * x;
    let u2 = t2 + t1;
    let u3 = t3 * h;
    let v1 = u1 + u2;
    let v2 = u2 * u3;
    let w1 = v1 * x;
    let w2 = v2 + u3;
    let p1 = w1 - w2;
    let p2 = w2 * t2;
    let q1 = p1 * p2;
    let q2 = p2 + v1;
    let r1 = q1 + q2;
    let r2 = q2 * h;
    let s1 = r1 * r2;
    out y = s1 + q1;
}
";

/// Builds a layered polynomial-style kernel with an exact operation count and
/// depth.
///
/// Level `k` (1-based) contains `widths[k - 1]` operations; every operation
/// takes its first operand from the previous level (or from the inputs at
/// level 1), which pins its ASAP level, and its second operand from a
/// deterministic rotation over all earlier values. The first `add_tail`
/// levels from the end use additions (mirroring the summation tail of the
/// polynomial benchmarks); earlier levels use multiplications.
fn layered_kernel(
    name: &str,
    num_inputs: usize,
    widths: &[usize],
    add_tail: usize,
) -> Result<Dfg, overlay_dfg::DfgError> {
    let mut builder = DfgBuilder::new(name);
    let inputs: Vec<NodeId> = (0..num_inputs)
        .map(|i| builder.input(format!("i{i}")))
        .collect();

    let depth = widths.len();
    let mut earlier: Vec<NodeId> = inputs.clone();
    let mut previous: Vec<NodeId> = inputs.clone();
    let mut last = None;
    let mut rotation = 0usize;
    for (level_index, &width) in widths.iter().enumerate() {
        let level = level_index + 1;
        let use_add = level > depth - add_tail;
        let mut this_level = Vec::with_capacity(width);
        for slot in 0..width {
            let first = previous[slot % previous.len()];
            let second = earlier[rotation % earlier.len()];
            rotation = rotation.wrapping_add(3);
            let op = if use_add { Op::Add } else { Op::Mul };
            let id = builder.op(op, &[first, second])?;
            this_level.push(id);
            last = Some(id);
        }
        earlier.extend(this_level.iter().copied());
        previous = this_level;
    }
    builder.output("y", last.expect("at least one level"));
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_build_valid_dfgs() {
        for benchmark in Benchmark::ALL {
            let dfg = benchmark.dfg().unwrap();
            assert!(dfg.validate().is_ok(), "{benchmark} must validate");
        }
    }

    #[test]
    fn characteristics_match_the_paper() {
        for benchmark in Benchmark::ALL {
            let dfg = benchmark.dfg().unwrap();
            let record = benchmark.paper_record();
            let analysis = dfg.analysis();
            assert_eq!(dfg.num_inputs(), record.inputs, "{benchmark} inputs");
            assert_eq!(dfg.num_outputs(), record.outputs, "{benchmark} outputs");
            assert_eq!(dfg.num_ops(), record.ops, "{benchmark} ops");
            assert_eq!(analysis.depth(), record.depth, "{benchmark} depth");
        }
    }

    #[test]
    fn table3_has_eight_entries_in_paper_order() {
        assert_eq!(Benchmark::TABLE3.len(), 8);
        assert_eq!(Benchmark::TABLE3[0], Benchmark::Chebyshev);
        assert_eq!(Benchmark::TABLE3[7], Benchmark::Poly8);
        assert!(!Benchmark::TABLE3.contains(&Benchmark::Gradient));
    }

    #[test]
    fn dsl_benchmarks_expose_their_source() {
        for benchmark in [
            Benchmark::Gradient,
            Benchmark::Chebyshev,
            Benchmark::Mibench,
            Benchmark::Sgfilter,
        ] {
            assert!(benchmark.source().is_some());
        }
        assert!(Benchmark::Qspline.source().is_none());
    }

    #[test]
    fn gradient_evaluates_like_a_gradient_magnitude() {
        use overlay_dfg::{evaluate, Value};
        let dfg = Benchmark::Gradient.dfg().unwrap();
        // centre pixel 3, neighbours 1, 2, 4, 5:
        // (1-3)^2 + (2-3)^2 + (3-4)^2 + (3-5)^2 = 4 + 1 + 1 + 4 = 10
        let out = evaluate(&dfg, &[1, 2, 3, 4, 5].map(Value::new)).unwrap();
        assert_eq!(out, vec![Value::new(10)]);
    }

    #[test]
    fn chebyshev_matches_t6_identity() {
        use overlay_dfg::{evaluate, Value};
        let dfg = Benchmark::Chebyshev.dfg().unwrap();
        // T6(2) = 32*2^6 - 48*2^4 + 18*2^2 - 1 = 2048 - 768 + 72 - 1 = 1351
        let out = evaluate(&dfg, &[Value::new(2)]).unwrap();
        assert_eq!(out, vec![Value::new(1351)]);
    }

    #[test]
    fn paper_ii_values_are_internally_consistent() {
        for benchmark in Benchmark::ALL {
            let record = benchmark.paper_record();
            assert!(record.ii_v1 <= record.ii_baseline, "{benchmark}");
            assert!(
                (record.ii_v2 - record.ii_v1 / 2.0).abs() < f64::EPSILON,
                "{benchmark}"
            );
        }
    }

    #[test]
    fn layered_kernel_rejects_nothing_but_matches_shape() {
        let dfg = layered_kernel("shape", 4, &[3, 2, 2, 1], 2).unwrap();
        assert_eq!(dfg.num_ops(), 8);
        assert_eq!(dfg.analysis().depth(), 4);
        assert_eq!(dfg.num_inputs(), 4);
    }
}
