//! Lexer for the kernel language.

use crate::error::{FrontendError, Span};

/// The kind of a lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// The `kernel` keyword.
    Kernel,
    /// The `let` keyword.
    Let,
    /// The `out` keyword.
    Out,
    /// An identifier (variable, kernel or function name).
    Ident(String),
    /// An integer literal (fits in `i32`).
    Number(i32),
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `<<`
    ShiftLeft,
    /// `>>`
    ShiftRight,
    /// `&`
    Ampersand,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `=`
    Equals,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Short human-readable description used in error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Kernel => "`kernel`".into(),
            TokenKind::Let => "`let`".into(),
            TokenKind::Out => "`out`".into(),
            TokenKind::Ident(name) => format!("identifier `{name}`"),
            TokenKind::Number(value) => format!("number `{value}`"),
            TokenKind::Plus => "`+`".into(),
            TokenKind::Minus => "`-`".into(),
            TokenKind::Star => "`*`".into(),
            TokenKind::ShiftLeft => "`<<`".into(),
            TokenKind::ShiftRight => "`>>`".into(),
            TokenKind::Ampersand => "`&`".into(),
            TokenKind::Pipe => "`|`".into(),
            TokenKind::Caret => "`^`".into(),
            TokenKind::Equals => "`=`".into(),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::LBrace => "`{`".into(),
            TokenKind::RBrace => "`}`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Semicolon => "`;`".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

/// A token together with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Where the token starts.
    pub span: Span,
}

/// A hand-written lexer producing a flat token vector.
///
/// Comments start with `#` and run to the end of the line. Whitespace is
/// insignificant.
///
/// # Example
///
/// ```
/// use overlay_frontend::{Lexer, TokenKind};
///
/// # fn main() -> Result<(), overlay_frontend::FrontendError> {
/// let tokens = Lexer::new("let y = x * 3;").tokenize()?;
/// assert_eq!(tokens[0].kind, TokenKind::Let);
/// assert_eq!(tokens[5].kind, TokenKind::Number(3));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Lexer<'src> {
    source: &'src str,
    chars: Vec<char>,
    index: usize,
    line: usize,
    column: usize,
}

impl<'src> Lexer<'src> {
    /// Creates a lexer over `source`.
    pub fn new(source: &'src str) -> Self {
        Lexer {
            source,
            chars: source.chars().collect(),
            index: 0,
            line: 1,
            column: 1,
        }
    }

    /// The source text this lexer reads from.
    pub fn source(&self) -> &'src str {
        self.source
    }

    fn span(&self) -> Span {
        Span {
            line: self.line,
            column: self.column,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.index).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let ch = self.peek()?;
        self.index += 1;
        if ch == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(ch)
    }

    /// Consumes the whole input and returns the token stream, ending with an
    /// [`TokenKind::Eof`] token.
    ///
    /// # Errors
    ///
    /// Returns [`FrontendError::UnexpectedChar`] for characters outside the
    /// language and [`FrontendError::LiteralOutOfRange`] for oversized
    /// numeric literals.
    pub fn tokenize(mut self) -> Result<Vec<Token>, FrontendError> {
        let mut tokens = Vec::new();
        loop {
            // Skip whitespace and comments.
            while let Some(ch) = self.peek() {
                if ch.is_whitespace() {
                    self.bump();
                } else if ch == '#' {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                } else {
                    break;
                }
            }
            let span = self.span();
            let Some(ch) = self.peek() else {
                tokens.push(Token {
                    kind: TokenKind::Eof,
                    span,
                });
                return Ok(tokens);
            };
            let kind = if ch.is_ascii_alphabetic() || ch == '_' {
                let mut ident = String::new();
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        ident.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                match ident.as_str() {
                    "kernel" => TokenKind::Kernel,
                    "let" => TokenKind::Let,
                    "out" => TokenKind::Out,
                    _ => TokenKind::Ident(ident),
                }
            } else if ch.is_ascii_digit() {
                let mut text = String::new();
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                let value: i64 = text.parse().map_err(|_| FrontendError::LiteralOutOfRange {
                    text: text.clone(),
                    span,
                })?;
                // Accept up to 2^31 so that `-2147483648` written as a
                // negated literal still lexes; the parser applies negation.
                if value > i64::from(i32::MAX) + 1 {
                    return Err(FrontendError::LiteralOutOfRange { text, span });
                }
                TokenKind::Number(value.min(i64::from(i32::MAX)) as i32)
            } else {
                self.bump();
                match ch {
                    '+' => TokenKind::Plus,
                    '-' => TokenKind::Minus,
                    '*' => TokenKind::Star,
                    '&' => TokenKind::Ampersand,
                    '|' => TokenKind::Pipe,
                    '^' => TokenKind::Caret,
                    '=' => TokenKind::Equals,
                    '(' => TokenKind::LParen,
                    ')' => TokenKind::RParen,
                    '{' => TokenKind::LBrace,
                    '}' => TokenKind::RBrace,
                    ',' => TokenKind::Comma,
                    ';' => TokenKind::Semicolon,
                    '<' if self.peek() == Some('<') => {
                        self.bump();
                        TokenKind::ShiftLeft
                    }
                    '>' if self.peek() == Some('>') => {
                        self.bump();
                        TokenKind::ShiftRight
                    }
                    other => return Err(FrontendError::UnexpectedChar { ch: other, span }),
                }
            };
            tokens.push(Token { kind, span });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<TokenKind> {
        Lexer::new(source)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn keywords_identifiers_and_numbers() {
        let kinds = kinds("kernel foo(x) { let y = x * 42; out z = y; }");
        assert_eq!(kinds[0], TokenKind::Kernel);
        assert_eq!(kinds[1], TokenKind::Ident("foo".into()));
        assert!(kinds.contains(&TokenKind::Number(42)));
        assert!(kinds.contains(&TokenKind::Out));
        assert_eq!(*kinds.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn comments_and_whitespace_are_skipped() {
        let kinds = kinds("# a comment\n  let x = 1; # trailing\n");
        assert_eq!(
            kinds,
            vec![
                TokenKind::Let,
                TokenKind::Ident("x".into()),
                TokenKind::Equals,
                TokenKind::Number(1),
                TokenKind::Semicolon,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn shift_operators_are_two_characters() {
        let kinds = kinds("a << 2 >> 1");
        assert!(kinds.contains(&TokenKind::ShiftLeft));
        assert!(kinds.contains(&TokenKind::ShiftRight));
    }

    #[test]
    fn unexpected_character_is_reported_with_position() {
        let err = Lexer::new("let x = $;").tokenize().unwrap_err();
        match err {
            FrontendError::UnexpectedChar { ch, span } => {
                assert_eq!(ch, '$');
                assert_eq!(span.line, 1);
                assert_eq!(span.column, 9);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn oversized_literal_is_rejected() {
        let err = Lexer::new("let x = 99999999999;").tokenize().unwrap_err();
        assert!(matches!(err, FrontendError::LiteralOutOfRange { .. }));
    }

    #[test]
    fn line_and_column_tracking() {
        let tokens = Lexer::new("let x = 1;\nlet y = 2;").tokenize().unwrap();
        let second_let = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Let)
            .nth(1)
            .unwrap();
        assert_eq!(second_let.span.line, 2);
        assert_eq!(second_let.span.column, 1);
    }
}
