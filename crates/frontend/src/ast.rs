//! Abstract syntax tree for the kernel language.

use std::fmt;

/// A parsed kernel: a name, ordered parameters (the stream inputs) and a body
/// of `let`/`out` statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Kernel {
    /// Kernel name.
    pub name: String,
    /// Input parameter names, in stream order.
    pub params: Vec<String>,
    /// Body statements, in source order.
    pub body: Vec<Stmt>,
}

impl Kernel {
    /// Names of the kernel outputs, in stream order.
    pub fn output_names(&self) -> Vec<&str> {
        self.body
            .iter()
            .filter_map(|stmt| match stmt {
                Stmt::Out { name, .. } => Some(name.as_str()),
                Stmt::Let { .. } => None,
            })
            .collect()
    }
}

/// A statement in a kernel body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `let name = expr;` — binds an intermediate value.
    Let {
        /// Bound name.
        name: String,
        /// Right-hand side.
        expr: Expr,
    },
    /// `out name = expr;` — defines a kernel output.
    Out {
        /// Output name.
        name: String,
        /// Right-hand side.
        expr: Expr,
    },
}

/// Binary operators of the expression grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let symbol = match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Shl => "<<",
            BinaryOp::Shr => ">>",
            BinaryOp::And => "&",
            BinaryOp::Or => "|",
            BinaryOp::Xor => "^",
        };
        f.write_str(symbol)
    }
}

/// Intrinsic unary/binary functions callable by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryFn {
    /// `sqr(x)` — squaring (maps to the DSP multiplier with both ports tied).
    Sqr,
    /// `abs(x)` — absolute value.
    Abs,
    /// `min(a, b)` — signed minimum.
    Min,
    /// `max(a, b)` — signed maximum.
    Max,
}

impl UnaryFn {
    /// Number of arguments the intrinsic requires.
    pub const fn arity(self) -> usize {
        match self {
            UnaryFn::Sqr | UnaryFn::Abs => 1,
            UnaryFn::Min | UnaryFn::Max => 2,
        }
    }

    /// The source-level name of the intrinsic.
    pub const fn name(self) -> &'static str {
        match self {
            UnaryFn::Sqr => "sqr",
            UnaryFn::Abs => "abs",
            UnaryFn::Min => "min",
            UnaryFn::Max => "max",
        }
    }

    /// Looks an intrinsic up by name.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "sqr" => Some(UnaryFn::Sqr),
            "abs" => Some(UnaryFn::Abs),
            "min" => Some(UnaryFn::Min),
            "max" => Some(UnaryFn::Max),
            _ => None,
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A reference to a parameter or `let` binding.
    Var(String),
    /// An integer literal.
    Literal(i32),
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary negation (`-x`).
    Neg(Box<Expr>),
    /// An intrinsic function call.
    Call {
        /// The intrinsic.
        function: UnaryFn,
        /// The arguments, in order.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// Number of operation nodes a direct (no CSE, no folding) lowering of
    /// this expression produces.
    pub fn op_count(&self) -> usize {
        match self {
            Expr::Var(_) | Expr::Literal(_) => 0,
            Expr::Binary { lhs, rhs, .. } => 1 + lhs.op_count() + rhs.op_count(),
            Expr::Neg(inner) => 1 + inner.op_count(),
            Expr::Call { args, .. } => 1 + args.iter().map(Expr::op_count).sum::<usize>(),
        }
    }

    /// Free variables referenced by the expression, in first-appearance order.
    pub fn free_vars(&self) -> Vec<&str> {
        let mut vars = Vec::new();
        self.collect_vars(&mut vars);
        vars
    }

    fn collect_vars<'a>(&'a self, vars: &mut Vec<&'a str>) {
        match self {
            Expr::Var(name) => {
                if !vars.contains(&name.as_str()) {
                    vars.push(name);
                }
            }
            Expr::Literal(_) => {}
            Expr::Binary { lhs, rhs, .. } => {
                lhs.collect_vars(vars);
                rhs.collect_vars(vars);
            }
            Expr::Neg(inner) => inner.collect_vars(vars),
            Expr::Call { args, .. } => {
                for arg in args {
                    arg.collect_vars(vars);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(name: &str) -> Expr {
        Expr::Var(name.into())
    }

    #[test]
    fn op_count_counts_every_operator() {
        let expr = Expr::Binary {
            op: BinaryOp::Add,
            lhs: Box::new(Expr::Binary {
                op: BinaryOp::Mul,
                lhs: Box::new(var("a")),
                rhs: Box::new(var("b")),
            }),
            rhs: Box::new(Expr::Call {
                function: UnaryFn::Sqr,
                args: vec![var("c")],
            }),
        };
        assert_eq!(expr.op_count(), 3);
    }

    #[test]
    fn free_vars_are_deduplicated_in_order() {
        let expr = Expr::Binary {
            op: BinaryOp::Sub,
            lhs: Box::new(Expr::Binary {
                op: BinaryOp::Add,
                lhs: Box::new(var("x")),
                rhs: Box::new(var("y")),
            }),
            rhs: Box::new(var("x")),
        };
        assert_eq!(expr.free_vars(), vec!["x", "y"]);
    }

    #[test]
    fn intrinsics_round_trip_by_name() {
        for f in [UnaryFn::Sqr, UnaryFn::Abs, UnaryFn::Min, UnaryFn::Max] {
            assert_eq!(UnaryFn::by_name(f.name()), Some(f));
        }
        assert_eq!(UnaryFn::by_name("cos"), None);
    }

    #[test]
    fn kernel_output_names_preserve_order() {
        let kernel = Kernel {
            name: "two-out".into(),
            params: vec!["a".into()],
            body: vec![
                Stmt::Out {
                    name: "first".into(),
                    expr: var("a"),
                },
                Stmt::Out {
                    name: "second".into(),
                    expr: var("a"),
                },
            ],
        };
        assert_eq!(kernel.output_names(), vec!["first", "second"]);
    }
}
