//! Lowering from the kernel AST to an [`overlay_dfg::Dfg`].

use std::collections::HashMap;

use overlay_dfg::{Dfg, DfgBuilder, NodeId, Op, Value};

use crate::ast::{BinaryOp, Expr, Kernel, Stmt, UnaryFn};
use crate::error::FrontendError;

/// Options controlling the lowering of kernel ASTs to DFGs.
///
/// The defaults perform *direct* lowering (one operation node per source
/// operator) with square detection, which keeps the resulting operation count
/// predictable — important when reproducing the paper's per-benchmark `#Ops`
/// figures. Enable [`LowerOptions::cse`] to share identical subexpressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LowerOptions {
    /// Fold operations whose operands are all literals at compile time.
    pub fold_constants: bool,
    /// Reuse a node when an identical `(op, operands)` combination recurs.
    pub cse: bool,
    /// Turn `x * x` into a single [`Op::Square`] node (matching the paper's
    /// `SQR` nodes).
    pub detect_squares: bool,
}

impl Default for LowerOptions {
    fn default() -> Self {
        LowerOptions {
            fold_constants: true,
            cse: false,
            detect_squares: true,
        }
    }
}

impl LowerOptions {
    /// Options for fully optimised lowering (constant folding, CSE and square
    /// detection all enabled).
    pub fn optimized() -> Self {
        LowerOptions {
            fold_constants: true,
            cse: true,
            detect_squares: true,
        }
    }

    /// Options for completely literal lowering (no folding, no CSE, no square
    /// detection) — every source operator becomes exactly one node.
    pub fn literal() -> Self {
        LowerOptions {
            fold_constants: false,
            cse: false,
            detect_squares: false,
        }
    }
}

/// Lowers a parsed [`Kernel`] to a [`Dfg`].
///
/// # Errors
///
/// * [`FrontendError::DuplicateDefinition`] for re-bound names,
/// * [`FrontendError::UndefinedVariable`] for uses of unknown names,
/// * [`FrontendError::NoOutputs`] if the kernel has no `out` statement,
/// * [`FrontendError::Dfg`] if the resulting graph fails validation.
///
/// # Example
///
/// ```
/// use overlay_frontend::{lower_kernel, parse_kernel, LowerOptions};
///
/// # fn main() -> Result<(), overlay_frontend::FrontendError> {
/// let kernel = parse_kernel("kernel f(x) { out y = x * x; }")?;
/// let dfg = lower_kernel(&kernel, &LowerOptions::default())?;
/// // `x * x` became a single SQR node thanks to square detection.
/// assert_eq!(dfg.num_ops(), 1);
/// # Ok(())
/// # }
/// ```
pub fn lower_kernel(kernel: &Kernel, options: &LowerOptions) -> Result<Dfg, FrontendError> {
    Lowerer::new(kernel, *options).lower()
}

struct Lowerer<'k> {
    kernel: &'k Kernel,
    options: LowerOptions,
    builder: DfgBuilder,
    env: HashMap<String, NodeId>,
    input_ids: Vec<NodeId>,
    constants: HashMap<i32, NodeId>,
    literal_values: HashMap<NodeId, i32>,
    cse_cache: HashMap<(Op, Vec<NodeId>), NodeId>,
}

impl<'k> Lowerer<'k> {
    fn new(kernel: &'k Kernel, options: LowerOptions) -> Self {
        Lowerer {
            kernel,
            options,
            builder: DfgBuilder::new(kernel.name.clone()),
            env: HashMap::new(),
            input_ids: Vec::new(),
            constants: HashMap::new(),
            literal_values: HashMap::new(),
            cse_cache: HashMap::new(),
        }
    }

    fn lower(mut self) -> Result<Dfg, FrontendError> {
        for param in &self.kernel.params {
            if self.env.contains_key(param) {
                return Err(FrontendError::DuplicateDefinition {
                    name: param.clone(),
                });
            }
            let id = self.builder.input(param.clone());
            self.input_ids.push(id);
            self.env.insert(param.clone(), id);
        }

        let mut has_output = false;
        for stmt in &self.kernel.body {
            match stmt {
                Stmt::Let { name, expr } => {
                    if self.env.contains_key(name) {
                        return Err(FrontendError::DuplicateDefinition { name: name.clone() });
                    }
                    let id = self.lower_expr(expr)?;
                    self.env.insert(name.clone(), id);
                }
                Stmt::Out { name, expr } => {
                    has_output = true;
                    let id = self.lower_expr(expr)?;
                    // Outputs must be driven by an operation node; wrap bare
                    // inputs/constants in a MOV so the FU forwards them.
                    let source = if self.builder_node_is_op(id) {
                        id
                    } else {
                        self.emit(Op::Mov, vec![id])?
                    };
                    self.builder.output(name.clone(), source);
                }
            }
        }
        if !has_output {
            return Err(FrontendError::NoOutputs {
                kernel: self.kernel.name.clone(),
            });
        }
        Ok(self.builder.build()?)
    }

    fn builder_node_is_op(&self, id: NodeId) -> bool {
        // Inputs and constants are the only non-operation value nodes the
        // lowerer creates, and it tracks both.
        !self.input_ids.contains(&id) && !self.literal_values.contains_key(&id)
    }

    fn constant(&mut self, value: i32) -> NodeId {
        if let Some(&id) = self.constants.get(&value) {
            return id;
        }
        let id = self.builder.constant(Value::new(value));
        self.constants.insert(value, id);
        self.literal_values.insert(id, value);
        id
    }

    fn emit(&mut self, op: Op, operands: Vec<NodeId>) -> Result<NodeId, FrontendError> {
        // Constant folding.
        if self.options.fold_constants {
            let literal_operands: Option<Vec<i32>> = operands
                .iter()
                .map(|id| self.literal_values.get(id).copied())
                .collect();
            if let Some(literals) = literal_operands {
                let values: Vec<Value> = literals.into_iter().map(Value::new).collect();
                if let Ok(folded) = op.apply(&values) {
                    return Ok(self.constant(folded.get()));
                }
            }
        }
        // Common subexpression elimination.
        if self.options.cse {
            let mut key_operands = operands.clone();
            if op.is_commutative() {
                key_operands.sort();
            }
            let key = (op, key_operands);
            if let Some(&existing) = self.cse_cache.get(&key) {
                return Ok(existing);
            }
            let id = self.builder.op(op, &operands)?;
            self.cse_cache.insert(key, id);
            return Ok(id);
        }
        Ok(self.builder.op(op, &operands)?)
    }

    fn lower_expr(&mut self, expr: &Expr) -> Result<NodeId, FrontendError> {
        match expr {
            Expr::Var(name) => self
                .env
                .get(name)
                .copied()
                .ok_or_else(|| FrontendError::UndefinedVariable { name: name.clone() }),
            Expr::Literal(value) => Ok(self.constant(*value)),
            Expr::Neg(inner) => {
                let operand = self.lower_expr(inner)?;
                self.emit(Op::Neg, vec![operand])
            }
            Expr::Call { function, args } => {
                let operands: Vec<NodeId> = args
                    .iter()
                    .map(|arg| self.lower_expr(arg))
                    .collect::<Result<_, _>>()?;
                let op = match function {
                    UnaryFn::Sqr => Op::Square,
                    UnaryFn::Abs => Op::Abs,
                    UnaryFn::Min => Op::Min,
                    UnaryFn::Max => Op::Max,
                };
                self.emit(op, operands)
            }
            Expr::Binary { op, lhs, rhs } => {
                let lhs_id = self.lower_expr(lhs)?;
                let rhs_id = self.lower_expr(rhs)?;
                if self.options.detect_squares && *op == BinaryOp::Mul && lhs_id == rhs_id {
                    return self.emit(Op::Square, vec![lhs_id]);
                }
                let op = match op {
                    BinaryOp::Add => Op::Add,
                    BinaryOp::Sub => Op::Sub,
                    BinaryOp::Mul => Op::Mul,
                    BinaryOp::Shl => Op::Shl,
                    BinaryOp::Shr => Op::Shr,
                    BinaryOp::And => Op::And,
                    BinaryOp::Or => Op::Or,
                    BinaryOp::Xor => Op::Xor,
                };
                self.emit(op, vec![lhs_id, rhs_id])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_kernel;
    use overlay_dfg::evaluate;

    fn lower(source: &str, options: LowerOptions) -> Result<Dfg, FrontendError> {
        lower_kernel(&parse_kernel(source).unwrap(), &options)
    }

    #[test]
    fn direct_lowering_counts_ops_one_per_operator() {
        let dfg = lower(
            "kernel k(a, b) { let t = a + b; out y = t * t - 4; }",
            LowerOptions::literal(),
        )
        .unwrap();
        // a+b, t*t (no square detection), -4 constant sub -> 3 ops
        assert_eq!(dfg.num_ops(), 3);
    }

    #[test]
    fn square_detection_uses_sqr_nodes() {
        let dfg = lower("kernel k(a) { out y = a * a; }", LowerOptions::default()).unwrap();
        assert_eq!(dfg.num_ops(), 1);
        assert_eq!(dfg.op_histogram()[&Op::Square], 1);
    }

    #[test]
    fn constant_folding_collapses_literal_math() {
        let dfg = lower(
            "kernel k(a) { out y = a + (2 * 3 + 4); }",
            LowerOptions::default(),
        )
        .unwrap();
        assert_eq!(dfg.num_ops(), 1); // only the a + 10 add survives
        let out = evaluate(&dfg, &[Value::new(1)]).unwrap();
        assert_eq!(out, vec![Value::new(11)]);
    }

    #[test]
    fn cse_shares_identical_subexpressions() {
        let source = "kernel k(a, b) { out y = (a + b) * (a + b); }";
        let without = lower(source, LowerOptions::default()).unwrap();
        let with = lower(source, LowerOptions::optimized()).unwrap();
        assert_eq!(without.num_ops(), 3); // two adds and a mul
        assert_eq!(with.num_ops(), 2); // shared add, then a SQR of it
    }

    #[test]
    fn cse_respects_commutativity() {
        let source = "kernel k(a, b) { out y = (a + b) * (b + a); }";
        let dfg = lower(source, LowerOptions::optimized()).unwrap();
        assert_eq!(dfg.num_ops(), 2);
    }

    #[test]
    fn undefined_variable_is_reported() {
        assert!(matches!(
            lower("kernel k(a) { out y = a + q; }", LowerOptions::default()),
            Err(FrontendError::UndefinedVariable { .. })
        ));
    }

    #[test]
    fn duplicate_let_is_reported() {
        assert!(matches!(
            lower(
                "kernel k(a) { let t = a; let t = a + 1; out y = t; }",
                LowerOptions::default()
            ),
            Err(FrontendError::DuplicateDefinition { .. })
        ));
    }

    #[test]
    fn kernel_without_outputs_is_rejected() {
        assert!(matches!(
            lower("kernel k(a) { let t = a + 1; }", LowerOptions::default()),
            Err(FrontendError::NoOutputs { .. })
        ));
    }

    #[test]
    fn output_of_plain_input_gets_a_mov() {
        let dfg = lower("kernel k(a) { out y = a; }", LowerOptions::default()).unwrap();
        assert_eq!(dfg.num_ops(), 1);
        assert_eq!(dfg.op_histogram()[&Op::Mov], 1);
        assert_eq!(
            evaluate(&dfg, &[Value::new(17)]).unwrap(),
            vec![Value::new(17)]
        );
    }

    #[test]
    fn lowered_kernels_evaluate_correctly() {
        let dfg = lower(
            "kernel f(a, b, c) { let t = a * b; out y = abs(t - c) + min(a, b) * max(a, c); }",
            LowerOptions::default(),
        )
        .unwrap();
        // a=2, b=-3, c=4: t=-6; |−6−4|=10; min(2,−3)=−3; max(2,4)=4; 10 + (−12) = −2
        let out = evaluate(&dfg, &[Value::new(2), Value::new(-3), Value::new(4)]).unwrap();
        assert_eq!(out, vec![Value::new(-2)]);
    }

    #[test]
    fn negation_lowers_to_neg_node() {
        let dfg = lower("kernel k(a) { out y = -(a * 3); }", LowerOptions::default()).unwrap();
        assert_eq!(dfg.op_histogram()[&Op::Neg], 1);
        assert_eq!(
            evaluate(&dfg, &[Value::new(5)]).unwrap(),
            vec![Value::new(-15)]
        );
    }

    #[test]
    fn duplicate_parameter_is_rejected() {
        assert!(matches!(
            lower("kernel k(a, a) { out y = a; }", LowerOptions::default()),
            Err(FrontendError::DuplicateDefinition { .. })
        ));
    }
}
