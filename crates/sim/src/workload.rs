//! Input workloads for simulation runs.

use overlay_dfg::Value;
use rand::prelude::*;
use rand::rngs::StdRng;

/// A stream of kernel invocations: each record holds one word per kernel
/// input, in stream order.
///
/// # Example
///
/// ```
/// use overlay_sim::Workload;
/// use overlay_dfg::Value;
///
/// let workload = Workload::random(5, 100, 42);
/// assert_eq!(workload.len(), 100);
/// assert_eq!(workload.records()[0].len(), 5);
///
/// let explicit = Workload::from_records(vec![vec![Value::new(1), Value::new(2)]]);
/// assert_eq!(explicit.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    records: Vec<Vec<Value>>,
}

impl Workload {
    /// Wraps explicit records.
    pub fn from_records(records: Vec<Vec<Value>>) -> Self {
        Workload { records }
    }

    /// Generates `blocks` random records of `inputs` words each, with values
    /// in a small range so squaring chains stay within 32 bits.
    pub fn random(inputs: usize, blocks: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let records = (0..blocks)
            .map(|_| {
                (0..inputs)
                    .map(|_| Value::new(rng.gen_range(-8..=8)))
                    .collect()
            })
            .collect();
        Workload { records }
    }

    /// A simple ramp workload (record `b` holds `b, b+1, …`), useful for
    /// deterministic examples.
    pub fn ramp(inputs: usize, blocks: usize) -> Self {
        let records = (0..blocks)
            .map(|b| (0..inputs).map(|i| Value::new((b + i) as i32)).collect())
            .collect();
        Workload { records }
    }

    /// The invocation records.
    pub fn records(&self) -> &[Vec<Value>] {
        &self.records
    }

    /// Number of invocations.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl FromIterator<Vec<Value>> for Workload {
    fn from_iter<T: IntoIterator<Item = Vec<Value>>>(iter: T) -> Self {
        Workload {
            records: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_workload_is_reproducible() {
        let a = Workload::random(3, 10, 7);
        let b = Workload::random(3, 10, 7);
        assert_eq!(a, b);
        assert_ne!(a, Workload::random(3, 10, 8));
    }

    #[test]
    fn ramp_workload_is_deterministic() {
        let w = Workload::ramp(2, 3);
        assert_eq!(w.records()[2], vec![Value::new(2), Value::new(3)]);
        assert!(!w.is_empty());
    }

    #[test]
    fn collects_from_iterator() {
        let w: Workload = (0..4).map(|i| vec![Value::new(i)]).collect();
        assert_eq!(w.len(), 4);
    }
}
