//! Simulator error type.

use std::fmt;

use overlay_dfg::DfgError;
use overlay_isa::IsaError;

/// Errors produced while simulating a compiled kernel.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A workload record has the wrong number of input words.
    InputWidthMismatch {
        /// Inputs the kernel expects per invocation.
        expected: usize,
        /// Words supplied in the offending record.
        found: usize,
        /// Index of the offending record.
        record: usize,
    },
    /// The workload is empty.
    EmptyWorkload,
    /// An instruction read a register that was never written in the current
    /// block context.
    UninitializedRegister {
        /// FU index.
        fu: usize,
        /// Register index.
        register: usize,
        /// Block (invocation) index.
        block: usize,
    },
    /// A write-back value was read before the internal write-back path had
    /// delivered it — the schedule violated the IWP spacing.
    WritebackHazard {
        /// FU index.
        fu: usize,
        /// Block (invocation) index.
        block: usize,
        /// Issue-slot distance observed between producer and consumer.
        observed: usize,
        /// Minimum distance the hardware requires.
        required: usize,
    },
    /// A stage tried to load more words than the upstream stage forwarded.
    StreamUnderflow {
        /// FU index.
        fu: usize,
        /// Block (invocation) index.
        block: usize,
    },
    /// The compiled program is malformed (e.g. decode failure).
    Isa(IsaError),
    /// The kernel graph was malformed.
    Dfg(DfgError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InputWidthMismatch {
                expected,
                found,
                record,
            } => write!(
                f,
                "workload record {record} has {found} word(s) but the kernel expects {expected}"
            ),
            SimError::EmptyWorkload => write!(f, "workload contains no records"),
            SimError::UninitializedRegister {
                fu,
                register,
                block,
            } => write!(
                f,
                "FU{fu} read uninitialised register r{register} in block {block}"
            ),
            SimError::WritebackHazard {
                fu,
                block,
                observed,
                required,
            } => write!(
                f,
                "write-back hazard on FU{fu} block {block}: dependent instructions {observed} slot(s) apart, {required} required"
            ),
            SimError::StreamUnderflow { fu, block } => {
                write!(f, "FU{fu} tried to load more words than arrived in block {block}")
            }
            SimError::Isa(err) => write!(f, "invalid program: {err}"),
            SimError::Dfg(err) => write!(f, "invalid kernel graph: {err}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Isa(err) => Some(err),
            SimError::Dfg(err) => Some(err),
            _ => None,
        }
    }
}

impl From<IsaError> for SimError {
    fn from(err: IsaError) -> Self {
        SimError::Isa(err)
    }
}

impl From<DfgError> for SimError {
    fn from(err: DfgError) -> Self {
        SimError::Dfg(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_identify_the_fu_and_block() {
        let err = SimError::WritebackHazard {
            fu: 3,
            block: 7,
            observed: 2,
            required: 5,
        };
        let text = err.to_string();
        assert!(text.contains("FU3"));
        assert!(text.contains("block 7"));
    }

    #[test]
    fn error_is_send_sync_and_std_error() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<SimError>();
    }
}
