//! The whole-overlay simulator.

use overlay_arch::FuVariant;
use overlay_dfg::Value;
use overlay_scheduler::CompiledKernel;

use crate::engine::{FuEngine, TimedWord};
use crate::error::SimError;
use crate::metrics::SimMetrics;
use crate::trace::{Event, EventKind, Trace};
use crate::workload::Workload;

/// Simulator for a linear overlay running one compiled kernel over a
/// workload of invocations.
///
/// See the [crate-level documentation](crate) for the modelling assumptions
/// and an end-to-end example.
#[derive(Debug, Clone)]
pub struct OverlaySimulator {
    variant: FuVariant,
    trace_capacity: usize,
}

/// The outcome of a simulation run: functional outputs, measured metrics and
/// a bounded event trace.
#[derive(Debug, Clone)]
pub struct SimRun {
    outputs: Vec<Vec<Value>>,
    metrics: SimMetrics,
    trace: Trace,
}

impl SimRun {
    /// The kernel outputs, one record per invocation, in invocation order.
    pub fn outputs(&self) -> &[Vec<Value>] {
        &self.outputs
    }

    /// The measured metrics.
    pub fn metrics(&self) -> &SimMetrics {
        &self.metrics
    }

    /// The recorded event trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }
}

impl OverlaySimulator {
    /// Creates a simulator for overlays built from `variant`, recording up to
    /// 4096 trace events.
    pub fn new(variant: FuVariant) -> Self {
        OverlaySimulator {
            variant,
            trace_capacity: 4096,
        }
    }

    /// Sets the number of trace events to keep (0 disables tracing).
    #[must_use]
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// The FU variant this simulator models.
    pub fn variant(&self) -> FuVariant {
        self.variant
    }

    /// Runs `compiled` over `workload`.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] for malformed workloads (wrong record width,
    /// empty workload) or if the program violates a hardware constraint
    /// (uninitialised register, write-back hazard, stream underflow).
    pub fn run(&self, compiled: &CompiledKernel, workload: &Workload) -> Result<SimRun, SimError> {
        if workload.is_empty() {
            return Err(SimError::EmptyWorkload);
        }
        let num_inputs = compiled.program.num_inputs();
        for (index, record) in workload.records().iter().enumerate() {
            if record.len() != num_inputs {
                return Err(SimError::InputWidthMismatch {
                    expected: num_inputs,
                    found: record.len(),
                    record: index,
                });
            }
        }

        let mut trace = Trace::with_capacity(self.trace_capacity);
        let lanes = self.variant.datapath_lanes();
        // One chain of FU engines per datapath lane; the V2 variant processes
        // alternate invocations on alternate lanes.
        let mut chains: Vec<Vec<FuEngine>> = (0..lanes)
            .map(|_| {
                compiled
                    .program
                    .fu_programs()
                    .iter()
                    .enumerate()
                    .map(|(index, program)| FuEngine::new(index, self.variant, program.clone()))
                    .collect()
            })
            .collect();

        let mut outputs: Vec<Vec<Value>> = Vec::with_capacity(workload.len());
        let mut completion_cycles: Vec<usize> = Vec::with_capacity(workload.len());

        for (block, record) in workload.records().iter().enumerate() {
            let lane = block % lanes;
            // Input FIFO words for this invocation are all resident from
            // cycle 0 (streaming DMA keeps the FIFO ahead of the overlay).
            let mut words: Vec<TimedWord> = record
                .iter()
                .map(|&value| TimedWord { value, depart: 0 })
                .collect();
            for engine in chains[lane].iter_mut() {
                words = engine.process_block(block, &words, &mut trace)?;
            }
            // Map the final forwarded stream to the kernel outputs.
            let mut record_outputs = Vec::with_capacity(compiled.output_stream_index.len());
            let mut completion = 0usize;
            for (position, &stream_index) in compiled.output_stream_index.iter().enumerate() {
                let word = words.get(stream_index).ok_or(SimError::StreamUnderflow {
                    fu: compiled.num_fus(),
                    block,
                })?;
                record_outputs.push(word.value);
                completion = completion.max(word.arrival());
                trace.record(Event {
                    cycle: word.arrival(),
                    fu: compiled.num_fus(),
                    block,
                    kind: EventKind::Output {
                        position,
                        value: word.value,
                    },
                });
            }
            outputs.push(record_outputs);
            completion_cycles.push(completion);
        }

        let metrics = Self::measure(compiled, &completion_cycles);
        Ok(SimRun {
            outputs,
            metrics,
            trace,
        })
    }

    fn measure(compiled: &CompiledKernel, completions: &[usize]) -> SimMetrics {
        let blocks = completions.len();
        let latency_cycles = completions.first().copied().unwrap_or(0);
        let total_cycles = completions.iter().copied().max().unwrap_or(0);
        // Skip the pipeline-fill blocks when measuring the steady-state II.
        let warmup = compiled.num_fus().min(blocks.saturating_sub(2));
        let steady_state_ii = if blocks > warmup + 1 {
            let span = completions[blocks - 1] as f64 - completions[warmup] as f64;
            span / (blocks - warmup - 1) as f64
        } else if blocks >= 2 {
            (completions[blocks - 1] - completions[0]) as f64 / (blocks - 1) as f64
        } else {
            completions.first().copied().unwrap_or(0) as f64
        };
        SimMetrics {
            blocks,
            ops_per_block: compiled.schedule.total_ops(),
            latency_cycles,
            steady_state_ii,
            total_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay_dfg::evaluate_stream;
    use overlay_frontend::Benchmark;
    use overlay_scheduler::{generate_program, schedule};

    fn compile(benchmark: Benchmark, variant: FuVariant) -> CompiledKernel {
        let dfg = benchmark.dfg().unwrap();
        let stages = schedule(&dfg, variant, Some(8)).unwrap();
        generate_program(&dfg, &stages, variant).unwrap()
    }

    #[test]
    fn every_benchmark_matches_the_reference_evaluator_on_every_variant() {
        for benchmark in Benchmark::ALL {
            let dfg = benchmark.dfg().unwrap();
            let workload = Workload::random(dfg.num_inputs(), 12, 0xC0FFEE);
            let reference = evaluate_stream(&dfg, workload.records()).unwrap();
            for variant in FuVariant::EVALUATED {
                let compiled = compile(benchmark, variant);
                let run = OverlaySimulator::new(variant)
                    .with_trace_capacity(0)
                    .run(&compiled, &workload)
                    .unwrap();
                assert_eq!(
                    run.outputs(),
                    reference.as_slice(),
                    "{benchmark} on {variant}"
                );
            }
        }
    }

    #[test]
    fn measured_ii_matches_the_analytical_model_for_gradient() {
        let workload = Workload::random(5, 64, 7);
        for (variant, expected_ii) in [
            (FuVariant::Baseline, 11.0),
            (FuVariant::V1, 6.0),
            (FuVariant::V2, 3.0),
        ] {
            let compiled = compile(Benchmark::Gradient, variant);
            let run = OverlaySimulator::new(variant)
                .with_trace_capacity(0)
                .run(&compiled, &workload)
                .unwrap();
            assert!(
                (run.metrics().steady_state_ii - expected_ii).abs() < 0.6,
                "{variant}: measured {} vs expected {expected_ii}",
                run.metrics().steady_state_ii
            );
        }
    }

    #[test]
    fn measured_ii_tracks_the_model_across_the_benchmark_suite() {
        for benchmark in Benchmark::TABLE3 {
            for variant in [
                FuVariant::Baseline,
                FuVariant::V1,
                FuVariant::V3,
                FuVariant::V4,
            ] {
                let compiled = compile(benchmark, variant);
                let dfg = benchmark.dfg().unwrap();
                let workload = Workload::random(dfg.num_inputs(), 48, 3);
                let run = OverlaySimulator::new(variant)
                    .with_trace_capacity(0)
                    .run(&compiled, &workload)
                    .unwrap();
                let analytic = compiled.ii;
                let measured = run.metrics().steady_state_ii;
                assert!(
                    (measured - analytic).abs() <= 1.0 + analytic * 0.1,
                    "{benchmark} {variant}: measured {measured} vs model {analytic}"
                );
            }
        }
    }

    #[test]
    fn latency_grows_with_overlay_depth() {
        let deep = compile(Benchmark::Poly7, FuVariant::V1); // depth 13
        let fixed = compile(Benchmark::Poly7, FuVariant::V3); // depth 8
        let dfg = Benchmark::Poly7.dfg().unwrap();
        let workload = Workload::random(dfg.num_inputs(), 16, 5);
        let run_deep = OverlaySimulator::new(FuVariant::V1)
            .run(&deep, &workload)
            .unwrap();
        let run_fixed = OverlaySimulator::new(FuVariant::V3)
            .run(&fixed, &workload)
            .unwrap();
        assert!(
            run_fixed.metrics().latency_cycles < run_deep.metrics().latency_cycles,
            "fixed-depth overlay should cut latency: {} vs {}",
            run_fixed.metrics().latency_cycles,
            run_deep.metrics().latency_cycles
        );
    }

    #[test]
    fn v2_halves_the_initiation_interval() {
        let workload = Workload::random(5, 64, 9);
        let v1 = OverlaySimulator::new(FuVariant::V1)
            .run(&compile(Benchmark::Gradient, FuVariant::V1), &workload)
            .unwrap();
        let v2 = OverlaySimulator::new(FuVariant::V2)
            .run(&compile(Benchmark::Gradient, FuVariant::V2), &workload)
            .unwrap();
        let ratio = v1.metrics().steady_state_ii / v2.metrics().steady_state_ii;
        assert!((ratio - 2.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn malformed_workloads_are_rejected() {
        let compiled = compile(Benchmark::Gradient, FuVariant::V1);
        let sim = OverlaySimulator::new(FuVariant::V1);
        assert!(matches!(
            sim.run(&compiled, &Workload::from_records(vec![])),
            Err(SimError::EmptyWorkload)
        ));
        assert!(matches!(
            sim.run(
                &compiled,
                &Workload::from_records(vec![vec![Value::new(1); 3]])
            ),
            Err(SimError::InputWidthMismatch {
                expected: 5,
                found: 3,
                ..
            })
        ));
    }

    #[test]
    fn trace_contains_loads_execs_and_outputs() {
        let compiled = compile(Benchmark::Gradient, FuVariant::V1);
        let workload = Workload::ramp(5, 2);
        let run = OverlaySimulator::new(FuVariant::V1)
            .run(&compiled, &workload)
            .unwrap();
        let events = run.trace().events();
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Load { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Exec { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Output { .. })));
    }
}
