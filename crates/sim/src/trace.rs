//! Execution traces.

use std::fmt;

use overlay_dfg::Value;

/// What happened in one traced event.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// The input controller wrote an arriving word into the register file.
    Load {
        /// Destination register index.
        register: usize,
        /// The word value.
        value: Value,
        /// Whether the word was also bypassed downstream.
        forwarded: bool,
    },
    /// The DSP datapath produced a result.
    Exec {
        /// Operation mnemonic.
        mnemonic: &'static str,
        /// Result value.
        value: Value,
        /// Whether the result was written back to the register file.
        writeback: bool,
        /// Whether the result was forwarded downstream.
        forwarded: bool,
    },
    /// An idle (NOP) issue slot.
    Nop,
    /// A word was pushed into the output FIFO.
    Output {
        /// Output stream position.
        position: usize,
        /// The word value.
        value: Value,
    },
}

/// One traced event: when, where, what.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Cycle number (1-based, matching the paper's Table II).
    pub cycle: usize,
    /// FU index (the output FIFO uses the index one past the last FU).
    pub fu: usize,
    /// Kernel invocation (block) index.
    pub block: usize,
    /// The event itself.
    pub kind: EventKind,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            EventKind::Load {
                register,
                value,
                forwarded,
            } => write!(
                f,
                "cycle {:>4} FU{} blk{}: load r{register} <- {value}{}",
                self.cycle,
                self.fu,
                self.block,
                if *forwarded { " [fwd]" } else { "" }
            ),
            EventKind::Exec {
                mnemonic,
                value,
                writeback,
                forwarded,
            } => write!(
                f,
                "cycle {:>4} FU{} blk{}: {mnemonic} -> {value}{}{}",
                self.cycle,
                self.fu,
                self.block,
                if *writeback { " [wb]" } else { "" },
                if *forwarded { " [fwd]" } else { "" }
            ),
            EventKind::Nop => {
                write!(
                    f,
                    "cycle {:>4} FU{} blk{}: nop",
                    self.cycle, self.fu, self.block
                )
            }
            EventKind::Output { position, value } => write!(
                f,
                "cycle {:>4} OUT blk{}: out[{position}] = {value}",
                self.cycle, self.block
            ),
        }
    }
}

/// A bounded event trace.
///
/// Tracing every cycle of a long simulation would dominate memory, so the
/// trace stores at most `capacity` events and counts the rest.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    events: Vec<Event>,
    capacity: usize,
    dropped: usize,
}

impl Trace {
    /// Creates a trace that keeps at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// A trace that records nothing (used for performance runs).
    pub fn disabled() -> Self {
        Self::with_capacity(0)
    }

    /// Records an event (or counts it as dropped once the capacity is
    /// reached).
    pub fn record(&mut self, event: Event) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// How many events did not fit in the capacity.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Total events observed (recorded + dropped).
    pub fn total(&self) -> usize {
        self.events.len() + self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(cycle: usize) -> Event {
        Event {
            cycle,
            fu: 0,
            block: 0,
            kind: EventKind::Nop,
        }
    }

    #[test]
    fn trace_respects_its_capacity() {
        let mut trace = Trace::with_capacity(2);
        for cycle in 1..=5 {
            trace.record(event(cycle));
        }
        assert_eq!(trace.events().len(), 2);
        assert_eq!(trace.dropped(), 3);
        assert_eq!(trace.total(), 5);
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut trace = Trace::disabled();
        trace.record(event(1));
        assert!(trace.events().is_empty());
        assert_eq!(trace.total(), 1);
    }

    #[test]
    fn events_render_readably() {
        let load = Event {
            cycle: 3,
            fu: 1,
            block: 0,
            kind: EventKind::Load {
                register: 2,
                value: Value::new(7),
                forwarded: true,
            },
        };
        let text = load.to_string();
        assert!(text.contains("FU1"));
        assert!(text.contains("r2"));
        assert!(text.contains("[fwd]"));
        let out = Event {
            cycle: 9,
            fu: 4,
            block: 1,
            kind: EventKind::Output {
                position: 0,
                value: Value::new(10),
            },
        };
        assert!(out.to_string().contains("out[0] = 10"));
    }
}
