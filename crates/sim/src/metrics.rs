//! Performance metrics measured by the simulator.

use std::fmt;

/// Metrics measured over one simulation run.
///
/// Cycle counts are raw; conversions to wall-clock time and GOPS take the
/// overlay operating frequency (from `overlay-arch`) as a parameter so the
/// same run can be projected onto different devices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimMetrics {
    /// Number of kernel invocations simulated.
    pub blocks: usize,
    /// Operations executed per invocation.
    pub ops_per_block: usize,
    /// Cycle at which the first invocation's last output word was available
    /// (pipeline latency in cycles).
    pub latency_cycles: usize,
    /// Measured steady-state initiation interval, in cycles per invocation.
    pub steady_state_ii: f64,
    /// Cycle at which the last invocation completed.
    pub total_cycles: usize,
}

impl SimMetrics {
    /// Pipeline latency in nanoseconds at `fmax_mhz`.
    pub fn latency_ns(&self, fmax_mhz: f64) -> f64 {
        self.latency_cycles as f64 * 1_000.0 / fmax_mhz
    }

    /// Steady-state throughput in giga-operations per second at `fmax_mhz`.
    pub fn throughput_gops(&self, fmax_mhz: f64) -> f64 {
        if self.steady_state_ii <= 0.0 {
            return 0.0;
        }
        self.ops_per_block as f64 * fmax_mhz / self.steady_state_ii / 1_000.0
    }

    /// End-to-end wall-clock time for the whole run at `fmax_mhz`, in
    /// microseconds.
    pub fn runtime_us(&self, fmax_mhz: f64) -> f64 {
        self.total_cycles as f64 / fmax_mhz
    }
}

impl fmt::Display for SimMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} block(s), II = {:.2} cycles, latency = {} cycles, total = {} cycles",
            self.blocks, self.steady_state_ii, self.latency_cycles, self.total_cycles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const METRICS: SimMetrics = SimMetrics {
        blocks: 100,
        ops_per_block: 11,
        latency_cycles: 29,
        steady_state_ii: 6.0,
        total_cycles: 629,
    };

    #[test]
    fn conversions_scale_with_frequency() {
        // 29 cycles at 334 MHz ≈ 86.8 ns — the paper's gradient V1 latency.
        assert!((METRICS.latency_ns(334.0) - 86.8).abs() < 0.5);
        // 11 ops / 6 cycles at 334 MHz ≈ 0.61 GOPS.
        assert!((METRICS.throughput_gops(334.0) - 0.61).abs() < 0.02);
        assert!((METRICS.runtime_us(334.0) - 629.0 / 334.0).abs() < 1e-9);
    }

    #[test]
    fn zero_ii_means_zero_throughput() {
        let metrics = SimMetrics {
            steady_state_ii: 0.0,
            ..METRICS
        };
        assert_eq!(metrics.throughput_gops(300.0), 0.0);
    }

    #[test]
    fn display_summarises_the_run() {
        let text = METRICS.to_string();
        assert!(text.contains("100 block(s)"));
        assert!(text.contains("II = 6.00"));
    }
}
