//! Register-file model.

use overlay_dfg::Value;
use overlay_isa::{RegIndex, REGISTER_FILE_SIZE};

/// The lowest register index of the *static* region used for preloaded
/// constants. Registers below this boundary belong to the rotating window
/// used for streamed data and results.
pub const STATIC_REGION_START: usize = 24;

/// Software model of the FU's RAM32M register file.
///
/// The rotating-register-file mechanism of the V1+ variants writes each
/// invocation's data into a fresh window (the offset counter of Fig. 3) so
/// that loading the next block can overlap with executing the current one.
/// The simulator models this by keeping one register *context* per in-flight
/// block; constants live in the static region shared by all contexts.
///
/// # Example
///
/// ```
/// use overlay_sim::RegisterFile;
/// use overlay_isa::RegIndex;
/// use overlay_dfg::Value;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rf = RegisterFile::new();
/// rf.write(RegIndex::new(3)?, Value::new(42));
/// assert_eq!(rf.read(RegIndex::new(3)?), Some(Value::new(42)));
/// assert_eq!(rf.read(RegIndex::new(4)?), None);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterFile {
    slots: [Option<Value>; REGISTER_FILE_SIZE],
}

impl Default for RegisterFile {
    fn default() -> Self {
        Self::new()
    }
}

impl RegisterFile {
    /// Creates an empty register file (every entry uninitialised).
    pub fn new() -> Self {
        RegisterFile {
            slots: [None; REGISTER_FILE_SIZE],
        }
    }

    /// Writes `value` into `reg`.
    pub fn write(&mut self, reg: RegIndex, value: Value) {
        self.slots[reg.index()] = Some(value);
    }

    /// Reads `reg`, returning `None` if it was never written.
    pub fn read(&self, reg: RegIndex) -> Option<Value> {
        self.slots[reg.index()]
    }

    /// Clears the rotating window (streamed data and results) while keeping
    /// the static constant region — what happens conceptually when the
    /// offset counter advances to a fresh window for the next block.
    pub fn clear_window(&mut self) {
        for slot in self.slots.iter_mut().take(STATIC_REGION_START) {
            *slot = None;
        }
    }

    /// Number of registers currently holding a value.
    pub fn occupancy(&self) -> usize {
        self.slots.iter().filter(|slot| slot.is_some()).count()
    }

    /// Whether `reg` lies in the static (constant) region.
    pub fn is_static(reg: RegIndex) -> bool {
        reg.index() >= STATIC_REGION_START
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u32) -> RegIndex {
        RegIndex::new(i).unwrap()
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut rf = RegisterFile::new();
        assert_eq!(rf.read(r(0)), None);
        rf.write(r(0), Value::new(-7));
        assert_eq!(rf.read(r(0)), Some(Value::new(-7)));
        assert_eq!(rf.occupancy(), 1);
    }

    #[test]
    fn clear_window_preserves_the_static_region() {
        let mut rf = RegisterFile::new();
        rf.write(r(2), Value::new(1));
        rf.write(r(31), Value::new(99));
        rf.clear_window();
        assert_eq!(rf.read(r(2)), None);
        assert_eq!(rf.read(r(31)), Some(Value::new(99)));
    }

    #[test]
    fn static_region_classification() {
        assert!(!RegisterFile::is_static(r(0)));
        assert!(!RegisterFile::is_static(r(23)));
        assert!(RegisterFile::is_static(r(24)));
        assert!(RegisterFile::is_static(r(31)));
    }
}
