//! Cycle-accurate simulator for the linear time-multiplexed FPGA overlay.
//!
//! The simulator executes a [`overlay_scheduler::CompiledKernel`] — the per-FU
//! instruction streams produced by the mapping tool flow — on a software
//! model of the overlay:
//!
//! * each FU has a rotating register file (with a static region for
//!   preloaded constants), an input controller that writes arriving stream
//!   words one per cycle, and a DSP datapath with a configurable pipeline
//!   depth (3 stages, or 2 for the V5 variant);
//! * FUs are chained by FIFO channels; a value needed by a later stage is
//!   bypassed through every intermediate FU, arriving one cycle after it was
//!   loaded there;
//! * the write-back variants (V3–V5) write results back into the local
//!   register file after the internal write-back path (IWP) delay, and the
//!   simulator *checks* that the schedule really did separate dependent
//!   instructions by at least that many slots;
//! * the V2 variant's replicated datapath is modelled as two lanes that
//!   process alternate kernel invocations.
//!
//! The functional results are checked against the DFG reference evaluator
//! ([`overlay_dfg::evaluate`]) in the test-suite, and the measured initiation
//! interval and latency are compared with the analytical models of
//! `overlay-scheduler`.
//!
//! # Example
//!
//! ```
//! use overlay_frontend::Benchmark;
//! use overlay_arch::FuVariant;
//! use overlay_scheduler::{generate_program, schedule};
//! use overlay_sim::{OverlaySimulator, Workload};
//! use overlay_dfg::Value;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dfg = Benchmark::Gradient.dfg()?;
//! let stages = schedule(&dfg, FuVariant::V1, None)?;
//! let compiled = generate_program(&dfg, &stages, FuVariant::V1)?;
//!
//! let workload = Workload::from_records(vec![
//!     [1, 2, 3, 4, 5].map(Value::new).to_vec(),
//!     [5, 4, 3, 2, 1].map(Value::new).to_vec(),
//! ]);
//! let run = OverlaySimulator::new(FuVariant::V1).run(&compiled, &workload)?;
//! assert_eq!(run.outputs()[0], vec![Value::new(10)]);
//! assert_eq!(run.metrics().steady_state_ii, 6.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod error;
pub mod metrics;
pub mod overlay;
pub mod regfile;
pub mod trace;
pub mod workload;

pub use error::SimError;
pub use metrics::SimMetrics;
pub use overlay::{OverlaySimulator, SimRun};
pub use regfile::RegisterFile;
pub use trace::{Event, EventKind, Trace};
pub use workload::Workload;
