//! Per-FU execution engine.
//!
//! Each functional unit is modelled as two cooperating machines, following
//! the V1+ microarchitecture of Fig. 3:
//!
//! * the **input controller** (the rotating register file's write port)
//!   writes one arriving stream word per cycle into the register file and,
//!   for words tagged `fwd`, bypasses them to the downstream FU;
//! * the **execution engine** issues one `EXEC`/`NOP` slot per cycle through
//!   the DSP datapath once the block's data is resident, with a two-cycle
//!   pipeline flush between consecutive blocks (the `+2` of the paper's II
//!   equations) and a one-cycle separator between the load bursts of
//!   consecutive blocks (the `+1`).
//!
//! The `[14]` baseline has a single-port register file, so its loads and
//! executions serialise through one issue slot — which is exactly why its II
//! is `#load + #op + 2`.

use std::collections::HashMap;

use overlay_arch::FuVariant;
use overlay_dfg::Value;
use overlay_isa::{FuProgram, Instruction};

use crate::error::SimError;
use crate::regfile::RegisterFile;
use crate::trace::{Event, EventKind, Trace};

/// A stream word travelling between stages: its value and the cycle it
/// leaves the producing stage (it becomes visible downstream one cycle
/// later).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedWord {
    /// The 32-bit payload.
    pub value: Value,
    /// Cycle at which the word departs the producing stage.
    pub depart: usize,
}

impl TimedWord {
    /// The cycle at which the word is available to the consuming stage.
    pub fn arrival(&self) -> usize {
        self.depart + 1
    }
}

/// Persistent state of one FU across blocks.
#[derive(Debug, Clone)]
pub struct FuEngine {
    index: usize,
    variant: FuVariant,
    program: FuProgram,
    constants: RegisterFile,
    last_load_end: usize,
    last_exec_end: usize,
}

impl FuEngine {
    /// Creates the engine for FU `index` running `program` on `variant`.
    pub fn new(index: usize, variant: FuVariant, program: FuProgram) -> Self {
        let mut constants = RegisterFile::new();
        for (reg, value) in program.constant_init() {
            constants.write(*reg, *value);
        }
        FuEngine {
            index,
            variant,
            program,
            constants,
            last_load_end: 0,
            last_exec_end: 0,
        }
    }

    /// The FU index along the chain.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Resets the inter-block timing state (used when reusing an engine for
    /// a fresh run).
    pub fn reset(&mut self) {
        self.last_load_end = 0;
        self.last_exec_end = 0;
    }

    /// Processes one kernel invocation (`block`), consuming the words
    /// arriving from upstream and producing the words forwarded downstream.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] on stream underflow, uninitialised register
    /// reads or write-back hazards.
    pub fn process_block(
        &mut self,
        block: usize,
        incoming: &[TimedWord],
        trace: &mut Trace,
    ) -> Result<Vec<TimedWord>, SimError> {
        let serialized = matches!(self.variant, FuVariant::Baseline);
        let mut context = RegisterFile::new();
        let mut outgoing: Vec<TimedWord> = Vec::new();

        // ---- input phase ---------------------------------------------------
        let load_instrs: Vec<&Instruction> = self
            .program
            .instructions()
            .iter()
            .filter(|i| i.is_load())
            .collect();
        if load_instrs.len() > incoming.len() {
            return Err(SimError::StreamUnderflow {
                fu: self.index,
                block,
            });
        }
        let mut cursor = self.last_load_end + 2; // one idle separator cycle
        if serialized {
            // The single-port baseline cannot start a new block's loads until
            // the previous block's execution (and flush) has finished.
            cursor = cursor.max(self.last_exec_end + 3);
        }
        let mut last_load_time = self.last_load_end;
        for (j, instr) in load_instrs.iter().enumerate() {
            let Instruction::Load { dst, fwd } = instr else {
                unreachable!("filtered to loads");
            };
            let time = cursor.max(incoming[j].arrival());
            cursor = time + 1;
            last_load_time = time;
            context.write(*dst, incoming[j].value);
            if *fwd {
                outgoing.push(TimedWord {
                    value: incoming[j].value,
                    depart: time,
                });
            }
            trace.record(Event {
                cycle: time,
                fu: self.index,
                block,
                kind: EventKind::Load {
                    register: dst.index(),
                    value: incoming[j].value,
                    forwarded: *fwd,
                },
            });
        }
        if load_instrs.is_empty() {
            last_load_time = self.last_load_end;
        }

        // ---- execution phase -----------------------------------------------
        let exec_slots: Vec<&Instruction> = self
            .program
            .instructions()
            .iter()
            .filter(|i| !i.is_load())
            .collect();
        // Execution starts once the block's data is resident and the previous
        // block has drained the DSP pipeline (two flush cycles).
        let mut exec_time = (last_load_time + 1).max(self.last_exec_end + 3);
        if serialized {
            exec_time = exec_time.max(cursor);
        }
        let pipeline_depth = self.variant.dsp_pipeline_depth();
        let iwp = self.variant.iwp().unwrap_or(0);
        // Slot index at which each register was produced by a write-back, to
        // check the IWP spacing.
        let mut wb_slot_of_reg: HashMap<usize, usize> = HashMap::new();
        let mut last_exec_time = self.last_exec_end;

        for (slot_index, instr) in exec_slots.iter().enumerate() {
            let time = exec_time + slot_index;
            last_exec_time = time;
            match instr {
                Instruction::Nop => {
                    trace.record(Event {
                        cycle: time,
                        fu: self.index,
                        block,
                        kind: EventKind::Nop,
                    });
                }
                Instruction::Exec {
                    op,
                    dst,
                    src1,
                    src2,
                    wb,
                    ndf,
                } => {
                    let read = |reg: overlay_isa::RegIndex| -> Result<Value, SimError> {
                        if let Some(&producer_slot) = wb_slot_of_reg.get(&reg.index()) {
                            if slot_index < producer_slot + iwp.max(1) {
                                return Err(SimError::WritebackHazard {
                                    fu: self.index,
                                    block,
                                    observed: slot_index - producer_slot,
                                    required: iwp.max(1),
                                });
                            }
                        }
                        context
                            .read(reg)
                            .or_else(|| self.constants.read(reg))
                            .ok_or(SimError::UninitializedRegister {
                                fu: self.index,
                                register: reg.index(),
                                block,
                            })
                    };
                    let a = read(*src1)?;
                    let operands = if op.arity() == 1 {
                        vec![a]
                    } else {
                        vec![a, read(*src2)?]
                    };
                    let result = op.apply(&operands).map_err(SimError::Dfg)?;
                    if *wb {
                        context.write(*dst, result);
                        wb_slot_of_reg.insert(dst.index(), slot_index);
                    }
                    if !*ndf {
                        outgoing.push(TimedWord {
                            value: result,
                            depart: time + pipeline_depth,
                        });
                    }
                    trace.record(Event {
                        cycle: time,
                        fu: self.index,
                        block,
                        kind: EventKind::Exec {
                            mnemonic: op.mnemonic(),
                            value: result,
                            writeback: *wb,
                            forwarded: !*ndf,
                        },
                    });
                }
                Instruction::Load { .. } => unreachable!("loads were filtered out"),
            }
        }

        self.last_load_end = last_load_time;
        self.last_exec_end = last_exec_time;
        Ok(outgoing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay_dfg::Op;
    use overlay_isa::RegIndex;

    fn r(i: u32) -> RegIndex {
        RegIndex::new(i).unwrap()
    }

    fn word(value: i32) -> TimedWord {
        TimedWord {
            value: Value::new(value),
            depart: 0,
        }
    }

    fn adder_program() -> FuProgram {
        let mut p = FuProgram::new();
        p.push(Instruction::load(r(0)));
        p.push(Instruction::load(r(1)));
        p.push(Instruction::exec(Op::Add, r(2), r(0), r(1)));
        p
    }

    #[test]
    fn single_fu_adds_two_words() {
        let mut engine = FuEngine::new(0, FuVariant::V1, adder_program());
        let mut trace = Trace::with_capacity(16);
        let out = engine
            .process_block(0, &[word(3), word(4)], &mut trace)
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, Value::new(7));
        // loads at cycles 2 and 3, exec at cycle 4, result departs at 4 + 3.
        assert_eq!(out[0].depart, 7);
        assert_eq!(trace.events().len(), 3);
    }

    #[test]
    fn v1_steady_state_period_matches_eq2() {
        // 2 loads, 1 op: II = max(2 + 1, 1 + 2) = 3.
        let mut engine = FuEngine::new(0, FuVariant::V1, adder_program());
        let mut trace = Trace::disabled();
        let mut departs = Vec::new();
        for block in 0..6 {
            let out = engine
                .process_block(block, &[word(1), word(2)], &mut trace)
                .unwrap();
            departs.push(out[0].depart);
        }
        let deltas: Vec<usize> = departs.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(deltas[2..].iter().all(|&d| d == 3), "got {deltas:?}");
    }

    #[test]
    fn baseline_serialises_loads_and_execs() {
        // Same program on [14]: II = 2 + 1 + 2 = 5.
        let mut engine = FuEngine::new(0, FuVariant::Baseline, adder_program());
        let mut trace = Trace::disabled();
        let mut departs = Vec::new();
        for block in 0..6 {
            let out = engine
                .process_block(block, &[word(1), word(2)], &mut trace)
                .unwrap();
            departs.push(out[0].depart);
        }
        let deltas: Vec<usize> = departs.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(deltas[2..].iter().all(|&d| d == 5), "got {deltas:?}");
    }

    #[test]
    fn forwarded_loads_are_bypassed_downstream() {
        let mut p = FuProgram::new();
        p.push(Instruction::load_forward(r(0)));
        p.push(Instruction::load(r(1)));
        p.push(Instruction::exec(Op::Mul, r(2), r(0), r(1)));
        let mut engine = FuEngine::new(0, FuVariant::V1, p);
        let mut trace = Trace::disabled();
        let out = engine
            .process_block(0, &[word(5), word(6)], &mut trace)
            .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].value, Value::new(5)); // the bypassed word first
        assert_eq!(out[1].value, Value::new(30));
        assert!(out[0].depart < out[1].depart);
    }

    #[test]
    fn stream_underflow_is_detected() {
        let mut engine = FuEngine::new(2, FuVariant::V1, adder_program());
        let mut trace = Trace::disabled();
        let err = engine.process_block(0, &[word(1)], &mut trace).unwrap_err();
        assert!(matches!(err, SimError::StreamUnderflow { fu: 2, block: 0 }));
    }

    #[test]
    fn uninitialised_register_is_detected() {
        let mut p = FuProgram::new();
        p.push(Instruction::load(r(0)));
        p.push(Instruction::exec(Op::Add, r(2), r(0), r(9)));
        let mut engine = FuEngine::new(0, FuVariant::V1, p);
        let mut trace = Trace::disabled();
        let err = engine.process_block(0, &[word(1)], &mut trace).unwrap_err();
        assert!(matches!(
            err,
            SimError::UninitializedRegister { register: 9, .. }
        ));
    }

    #[test]
    fn writeback_hazard_is_detected_when_dependents_are_too_close() {
        // Two dependent execs back to back on a V3 FU (IWP = 5) violate the
        // write-back spacing and must be flagged.
        let mut p = FuProgram::new();
        p.push(Instruction::load(r(0)));
        p.push(Instruction::exec_flags(
            Op::Square,
            r(1),
            r(0),
            r(0),
            true,
            true,
        ));
        p.push(Instruction::exec(Op::Add, r(2), r(1), r(0)));
        let mut engine = FuEngine::new(0, FuVariant::V3, p);
        let mut trace = Trace::disabled();
        let err = engine.process_block(0, &[word(2)], &mut trace).unwrap_err();
        assert!(matches!(err, SimError::WritebackHazard { required: 5, .. }));
    }

    #[test]
    fn writeback_read_succeeds_after_the_iwp_delay() {
        let mut p = FuProgram::new();
        p.push(Instruction::load(r(0)));
        p.push(Instruction::exec_flags(
            Op::Square,
            r(1),
            r(0),
            r(0),
            true,
            true,
        ));
        for _ in 0..4 {
            p.push(Instruction::Nop);
        }
        p.push(Instruction::exec(Op::Add, r(2), r(1), r(0)));
        let mut engine = FuEngine::new(0, FuVariant::V3, p);
        let mut trace = Trace::disabled();
        let out = engine.process_block(0, &[word(3)], &mut trace).unwrap();
        // 3^2 + 3 = 12
        assert_eq!(out.last().unwrap().value, Value::new(12));
    }

    #[test]
    fn constants_are_readable_from_the_static_region() {
        let mut p = FuProgram::new();
        p.preload_constant(r(31), Value::new(10));
        p.push(Instruction::load(r(0)));
        p.push(Instruction::exec(Op::Mul, r(1), r(0), r(31)));
        let mut engine = FuEngine::new(0, FuVariant::V1, p);
        let mut trace = Trace::disabled();
        let out = engine.process_block(0, &[word(7)], &mut trace).unwrap();
        assert_eq!(out[0].value, Value::new(70));
    }
}
