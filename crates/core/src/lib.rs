//! # tm-overlay — a time-multiplexed FPGA overlay with linear interconnect
//!
//! This crate is the public façade of the workspace reproducing Li et al.,
//! *"A Time-Multiplexed FPGA Overlay with Linear Interconnect"* (DATE 2018).
//! It ties together:
//!
//! * [`frontend`] — the kernel language and the paper's benchmark suite,
//! * [`dfg`] — the data-flow-graph IR and reference evaluator,
//! * [`scheduler`] — ASAP and fixed-depth greedy scheduling, II models and
//!   instruction generation,
//! * [`isa`] — the 32-bit FU instruction set,
//! * [`arch`] — resource/frequency/reconfiguration models calibrated to the
//!   paper's published numbers,
//! * [`sim`] — the cycle-accurate overlay simulator,
//! * [`runtime`] — the online multi-tile serving runtime (streaming
//!   ingestion, virtual-time event loop, kernel cache, context-switch- and
//!   deadline-aware dispatch, parallel simulation workers),
//!
//! behind four entry points: [`Compiler`] (kernel source →
//! [`CompiledKernel`]), [`Overlay`] (a configured overlay instance that
//! executes compiled kernels and reports performance), [`Runtime`] (a
//! tile array serving whole request traces) and [`Cluster`] (several
//! device arrays behind one dispatcher tier with kernel-hash /
//! least-loaded / power-of-two routing and a transfer-cost model).
//!
//! # Quickstart
//!
//! ```
//! use tm_overlay::{Compiler, Overlay, FuVariant, Workload};
//! use tm_overlay::dfg::Value;
//!
//! # fn main() -> Result<(), tm_overlay::Error> {
//! // 1. Compile a kernel for the V1 overlay.
//! let compiled = Compiler::new(FuVariant::V1)
//!     .compile_source("kernel saxpy(a, x, y) { out r = a * x + y; }")?;
//!
//! // 2. Instantiate the overlay and run a workload through it.
//! let overlay = Overlay::for_kernel(FuVariant::V1, &compiled)?;
//! let workload = Workload::from_records(vec![
//!     [2, 3, 4].map(Value::new).to_vec(),
//!     [5, 6, 7].map(Value::new).to_vec(),
//! ]);
//! let run = overlay.execute(&compiled, &workload)?;
//! assert_eq!(run.outputs()[0], vec![Value::new(10)]);
//!
//! // 3. Inspect the performance report.
//! let report = overlay.performance(&compiled, &run);
//! assert!(report.throughput_gops > 0.0);
//! # Ok(())
//! # }
//! ```
//!
//! # Serving a live request stream on a tile array
//!
//! The [`Runtime`] scales the single-overlay flow out to a pool of
//! NoC-connected tiles (Sec. III-A.3) and serves *online*: requests stream
//! in through a bounded [`Submitter`] channel, every placement decision
//! happens at an arrival or completion event against live per-tile queue
//! state, distinct kernels compile once through an LRU cache, and
//! deadline-aware policies (EDF, slack-aware) reorder tile queues under
//! overload.
//!
//! ```
//! use tm_overlay::{DispatchPolicy, FuVariant, KernelSpec, Request, Runtime, Workload};
//!
//! # fn main() -> Result<(), tm_overlay::runtime::RuntimeError> {
//! let mut runtime = Runtime::new(FuVariant::V4, 4)?
//!     .with_policy(DispatchPolicy::EarliestDeadlineFirst);
//! let kernel = KernelSpec::from_source(
//!     "saxpy",
//!     "kernel saxpy(a, x, y) { out r = a * x + y; }",
//! );
//! let report = runtime.serve_stream(|submitter| {
//!     for i in 0..8 {
//!         let request = Request::new(i, kernel.clone(), Workload::ramp(3, 32))
//!             .at(i as f64)
//!             .with_deadline(i as f64 + 1_000.0);
//!         submitter.submit(request).expect("loop is live");
//!     }
//! })?;
//! assert_eq!(report.metrics().requests, 8);
//! assert_eq!(report.metrics().cache.misses, 1); // compiled once
//! assert_eq!(report.metrics().deadline_misses, 0);
//! assert_eq!(report.metrics().rejects, 0);
//! # Ok(())
//! # }
//! ```
//!
//! Pre-collected traces still work through the thin
//! [`Runtime::serve`] shim, which streams them in submission order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod compiler;
pub mod error;
pub mod overlay;
pub mod report;

/// Re-export of the architecture-model crate.
pub use overlay_arch as arch;
/// Re-export of the data-flow-graph crate.
pub use overlay_dfg as dfg;
/// Re-export of the front-end crate.
pub use overlay_frontend as frontend;
/// Re-export of the instruction-set crate.
pub use overlay_isa as isa;
/// Re-export of the multi-tile serving-runtime crate.
pub use overlay_runtime as runtime;
/// Re-export of the scheduler crate.
pub use overlay_scheduler as scheduler;
/// Re-export of the simulator crate.
pub use overlay_sim as sim;

pub use compiler::Compiler;
pub use error::Error;
pub use overlay::{Overlay, PerformanceReport};
pub use report::{compare_variants, VariantResult};

// The most frequently used types, re-exported at the crate root.
pub use overlay_arch::{FuVariant, OverlayConfig};
pub use overlay_frontend::Benchmark;
pub use overlay_runtime::{
    explain, Attribution, AttributionReport, BatchConfig, BatchStats, BurnAlert, ClassMetrics,
    Cluster, ClusterReport, DeviceMetrics, DispatchPolicy, FaultEvent, FaultKind, FaultPlan,
    FlashCrowd, KernelSpec, LogHistogram, PipelineOutcome, PipelineReport, PipelineRequest,
    PipelineStage, ProfileStats, ReplicationConfig, ReplicationStats, Request, RoutePolicy,
    Runtime, RuntimeMetrics, ScanMode, Scenario, ScenarioArrival, ScenarioConfig, ServeReport,
    Session, SloClass, SloConfig, SloObjective, SloReport, StageMetrics, SubmitError, Submitter,
    TelemetryConfig, TimeSeries, Trace, TraceConfig, TransferModel,
};
pub use overlay_scheduler::CompiledKernel;
pub use overlay_sim::{SimRun, Workload};
