//! Cross-variant comparison reports (the data behind the paper's Fig. 6).

use overlay_arch::FuVariant;
use overlay_dfg::Dfg;
use overlay_sim::Workload;

use crate::compiler::Compiler;
use crate::error::Error;
use crate::overlay::{Overlay, PerformanceReport};

/// The result of mapping and running one kernel on one overlay variant.
#[derive(Debug, Clone, PartialEq)]
pub struct VariantResult {
    /// The overlay variant.
    pub variant: FuVariant,
    /// The performance report.
    pub performance: PerformanceReport,
    /// Total configuration size in bits (drives the context-switch model).
    pub config_bits: usize,
}

/// Compiles `dfg` for each requested variant, simulates `blocks` random
/// invocations and collects the per-variant performance — one row of the
/// paper's Fig. 6 per call.
///
/// # Errors
///
/// Returns an [`Error`] if compilation or simulation fails for any variant.
///
/// # Example
///
/// ```
/// use tm_overlay::{compare_variants, Benchmark, FuVariant};
///
/// # fn main() -> Result<(), tm_overlay::Error> {
/// let dfg = Benchmark::Gradient.dfg()?;
/// let results = compare_variants(&dfg, &FuVariant::EVALUATED, 32, 7)?;
/// assert_eq!(results.len(), 5);
/// let baseline = &results[0];
/// let v1 = &results[1];
/// assert!(v1.performance.throughput_gops > baseline.performance.throughput_gops);
/// # Ok(())
/// # }
/// ```
pub fn compare_variants(
    dfg: &Dfg,
    variants: &[FuVariant],
    blocks: usize,
    seed: u64,
) -> Result<Vec<VariantResult>, Error> {
    let workload = Workload::random(dfg.num_inputs(), blocks, seed);
    let mut results = Vec::with_capacity(variants.len());
    for &variant in variants {
        let compiled = Compiler::new(variant).compile_dfg(dfg)?;
        let overlay = Overlay::for_kernel(variant, &compiled)?;
        let run = overlay.execute(&compiled, &workload)?;
        results.push(VariantResult {
            variant,
            performance: overlay.performance(&compiled, &run),
            config_bits: compiled.program.config_bits(),
        });
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay_frontend::Benchmark;

    #[test]
    fn every_enhanced_variant_beats_the_baseline_throughput() {
        // The paper: "all overlays have a higher throughput than the overlay
        // of [14]".
        for benchmark in [Benchmark::Gradient, Benchmark::Sgfilter, Benchmark::Poly6] {
            let dfg = benchmark.dfg().unwrap();
            let results = compare_variants(&dfg, &FuVariant::EVALUATED, 24, 3).unwrap();
            let baseline = results
                .iter()
                .find(|r| r.variant == FuVariant::Baseline)
                .unwrap()
                .performance
                .throughput_gops;
            for result in results.iter().filter(|r| r.variant != FuVariant::Baseline) {
                assert!(
                    result.performance.throughput_gops > baseline,
                    "{benchmark} {}: {} vs baseline {baseline}",
                    result.variant,
                    result.performance.throughput_gops
                );
            }
        }
    }

    #[test]
    fn fixed_depth_variants_cut_latency_cycles_on_deep_kernels() {
        // The latency advantage of the fixed-depth overlay comes from the
        // shorter FU chain; measured in cycles it is clear-cut, while in
        // nanoseconds part of it is given back to the lower fmax of the
        // write-back overlay (286 vs ~320 MHz), so the wall-clock comparison
        // only requires "not meaningfully worse".
        let dfg = Benchmark::Poly7.dfg().unwrap();
        let results = compare_variants(&dfg, &FuVariant::EVALUATED, 24, 11).unwrap();
        let v1 = results.iter().find(|r| r.variant == FuVariant::V1).unwrap();
        let v3 = results.iter().find(|r| r.variant == FuVariant::V3).unwrap();
        let v1_cycles = v1.performance.latency_ns * v1.performance.fmax_mhz;
        let v3_cycles = v3.performance.latency_ns * v3.performance.fmax_mhz;
        assert!(
            v3_cycles < v1_cycles,
            "V3 {v3_cycles:.0} cycles should beat V1 {v1_cycles:.0} cycles"
        );
        assert!(
            v3.performance.latency_ns <= v1.performance.latency_ns * 1.2,
            "V3 wall-clock latency should stay close to V1"
        );
    }
}
