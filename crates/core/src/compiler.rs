//! The kernel compiler: source text (or a DFG) to a loadable overlay
//! configuration.

use overlay_arch::FuVariant;
use overlay_dfg::Dfg;
use overlay_frontend::{compile_kernel_with, Benchmark, LowerOptions};
use overlay_scheduler::{generate_program, schedule, CompiledKernel};

use crate::error::Error;

/// Compiles kernels for a chosen overlay variant.
///
/// The compiler runs the full mapping tool flow of the paper's Sec. IV:
/// front-end (DFG extraction), scheduling (ASAP or fixed-depth greedy
/// clustering, depending on the variant) and instruction generation.
///
/// # Example
///
/// ```
/// use tm_overlay::{Compiler, FuVariant};
///
/// # fn main() -> Result<(), tm_overlay::Error> {
/// let compiled = Compiler::new(FuVariant::V3)
///     .with_fixed_depth(8)
///     .compile_source("kernel poly(x) { out y = (x * x + 3) * x - 7; }")?;
/// assert!(compiled.num_fus() <= 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Compiler {
    variant: FuVariant,
    fixed_depth: Option<usize>,
    lower_options: LowerOptions,
}

impl Compiler {
    /// Creates a compiler targeting overlays built from `variant`.
    pub fn new(variant: FuVariant) -> Self {
        Compiler {
            variant,
            fixed_depth: None,
            lower_options: LowerOptions::default(),
        }
    }

    /// Sets the fixed overlay depth used for the write-back variants
    /// (ignored by `[14]`, V1 and V2, whose depth follows the kernel).
    #[must_use]
    pub fn with_fixed_depth(mut self, depth: usize) -> Self {
        self.fixed_depth = Some(depth);
        self
    }

    /// Sets the front-end lowering options (constant folding, CSE, square
    /// detection).
    #[must_use]
    pub fn with_lower_options(mut self, options: LowerOptions) -> Self {
        self.lower_options = options;
        self
    }

    /// The overlay variant this compiler targets.
    pub fn variant(&self) -> FuVariant {
        self.variant
    }

    /// Compiles kernel source text.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] for parse, lowering, scheduling or code-generation
    /// failures.
    pub fn compile_source(&self, source: &str) -> Result<CompiledKernel, Error> {
        let dfg = compile_kernel_with(source, &self.lower_options)?;
        self.compile_dfg(&dfg)
    }

    /// Compiles an already-constructed kernel DFG.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] if scheduling or code generation fails.
    pub fn compile_dfg(&self, dfg: &Dfg) -> Result<CompiledKernel, Error> {
        let stages = schedule(dfg, self.variant, self.fixed_depth)?;
        Ok(generate_program(dfg, &stages, self.variant)?)
    }

    /// Compiles one of the paper's benchmark kernels.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] if the benchmark fails to build or map (which the
    /// test-suite guarantees does not happen for the shipped benchmarks).
    pub fn compile_benchmark(&self, benchmark: Benchmark) -> Result<CompiledKernel, Error> {
        let dfg = benchmark.dfg()?;
        self.compile_dfg(&dfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_source_dfg_and_benchmarks() {
        let compiler = Compiler::new(FuVariant::V1);
        let from_source = compiler
            .compile_source("kernel f(a, b) { out y = sqr(a - b); }")
            .unwrap();
        assert_eq!(from_source.num_fus(), 2);

        let dfg = Benchmark::Gradient.dfg().unwrap();
        let from_dfg = compiler.compile_dfg(&dfg).unwrap();
        let from_benchmark = compiler.compile_benchmark(Benchmark::Gradient).unwrap();
        assert_eq!(from_dfg.ii, from_benchmark.ii);
        assert_eq!(from_dfg.ii, 6.0);
    }

    #[test]
    fn fixed_depth_caps_the_fu_count_for_writeback_variants() {
        let deep = Benchmark::Poly7; // depth 13
        let v1 = Compiler::new(FuVariant::V1)
            .compile_benchmark(deep)
            .unwrap();
        assert_eq!(v1.num_fus(), 13);
        let v3 = Compiler::new(FuVariant::V3)
            .with_fixed_depth(8)
            .compile_benchmark(deep)
            .unwrap();
        assert_eq!(v3.num_fus(), 8);
        let v3_depth4 = Compiler::new(FuVariant::V3)
            .with_fixed_depth(4)
            .compile_benchmark(deep)
            .unwrap();
        assert_eq!(v3_depth4.num_fus(), 4);
    }

    #[test]
    fn bad_source_surfaces_a_frontend_error() {
        let result = Compiler::new(FuVariant::V1).compile_source("kernel broken(a) {");
        assert!(matches!(result, Err(Error::Frontend(_))));
    }
}
