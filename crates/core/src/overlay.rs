//! A configured overlay instance: execution, performance and context-switch
//! reporting.

use std::fmt;

use overlay_arch::{
    ContextSwitch, FpgaDevice, FuVariant, OverlayConfig, ReconfigModel, ResourceUsage,
};
use overlay_scheduler::CompiledKernel;
use overlay_sim::{OverlaySimulator, SimRun, Workload};

use crate::error::Error;

/// A linear-overlay instance: an architecture configuration plus a simulator.
///
/// See the [crate-level quickstart](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Overlay {
    config: OverlayConfig,
    simulator: OverlaySimulator,
    reconfig: ReconfigModel,
}

/// Performance of one compiled kernel on one overlay instance, combining the
/// simulator's cycle measurements with the architecture model's operating
/// frequency — the quantities plotted in the paper's Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerformanceReport {
    /// The overlay variant.
    pub variant: FuVariant,
    /// Number of FUs the kernel occupies.
    pub fus: usize,
    /// Analytical initiation interval (cycles).
    pub model_ii: f64,
    /// Measured steady-state initiation interval (cycles).
    pub measured_ii: f64,
    /// Overlay operating frequency used for the conversions (MHz).
    pub fmax_mhz: f64,
    /// Throughput in giga-operations per second.
    pub throughput_gops: f64,
    /// Pipeline latency in nanoseconds.
    pub latency_ns: f64,
}

impl fmt::Display for PerformanceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: II {:.1} (model {:.1}), {:.2} GOPS, {:.1} ns latency at {:.0} MHz",
            self.variant,
            self.measured_ii,
            self.model_ii,
            self.throughput_gops,
            self.latency_ns,
            self.fmax_mhz
        )
    }
}

impl Overlay {
    /// Creates an overlay of `variant` with an explicit depth.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] if the depth is out of range.
    pub fn new(variant: FuVariant, depth: usize) -> Result<Self, Error> {
        Ok(Overlay {
            config: OverlayConfig::new(variant, depth)?,
            simulator: OverlaySimulator::new(variant),
            reconfig: ReconfigModel::new(),
        })
    }

    /// Creates an overlay sized for `compiled`: the kernel's own depth for
    /// the feed-forward variants, the paper's fixed depth of 8 for the
    /// write-back variants.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] if the resulting depth is out of range.
    pub fn for_kernel(variant: FuVariant, compiled: &CompiledKernel) -> Result<Self, Error> {
        let depth = if variant.has_writeback() {
            overlay_arch::overlay::FIXED_DEPTH.max(compiled.num_fus())
        } else {
            compiled.num_fus()
        };
        Self::new(variant, depth)
    }

    /// The architecture configuration.
    pub fn config(&self) -> &OverlayConfig {
        &self.config
    }

    /// The FU variant.
    pub fn variant(&self) -> FuVariant {
        self.config.variant()
    }

    /// Estimated FPGA resource usage.
    pub fn resource_estimate(&self) -> ResourceUsage {
        self.config.resource_estimate()
    }

    /// Estimated operating frequency in MHz.
    pub fn fmax_mhz(&self) -> f64 {
        self.config.fmax_mhz()
    }

    /// Checks the overlay fits on `device`.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] naming the binding resource if it does not fit.
    pub fn check_fits(&self, device: &FpgaDevice) -> Result<(), Error> {
        Ok(self.config.check_fits(device)?)
    }

    /// Executes a compiled kernel over a workload on the cycle-accurate
    /// simulator.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] for malformed workloads or hardware-constraint
    /// violations detected during simulation.
    pub fn execute(&self, compiled: &CompiledKernel, workload: &Workload) -> Result<SimRun, Error> {
        Ok(self.simulator.run(compiled, workload)?)
    }

    /// Builds the performance report for a finished run.
    pub fn performance(&self, compiled: &CompiledKernel, run: &SimRun) -> PerformanceReport {
        let fmax = self.fmax_mhz();
        PerformanceReport {
            variant: self.variant(),
            fus: compiled.num_fus(),
            model_ii: compiled.ii,
            measured_ii: run.metrics().steady_state_ii,
            fmax_mhz: fmax,
            throughput_gops: run.metrics().throughput_gops(fmax),
            latency_ns: run.metrics().latency_ns(fmax),
        }
    }

    /// The hardware-context-switch cost of loading `compiled` onto this
    /// overlay: a full partial-reconfiguration plus configuration load for
    /// the feed-forward variants, configuration load only for the fixed-depth
    /// write-back variants.
    pub fn context_switch(&self, compiled: &CompiledKernel) -> ContextSwitch {
        let config_bits = compiled.program.config_bits();
        if self.variant().has_writeback() {
            self.reconfig
                .program_only_switch(self.variant(), config_bits)
        } else {
            self.reconfig.full_switch(&self.config, config_bits)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::Compiler;
    use overlay_frontend::Benchmark;

    #[test]
    fn quickstart_flow_produces_consistent_reports() {
        let compiled = Compiler::new(FuVariant::V1)
            .compile_benchmark(Benchmark::Gradient)
            .unwrap();
        let overlay = Overlay::for_kernel(FuVariant::V1, &compiled).unwrap();
        let workload = Workload::random(5, 32, 1);
        let run = overlay.execute(&compiled, &workload).unwrap();
        let report = overlay.performance(&compiled, &run);
        assert_eq!(report.fus, 4);
        assert!((report.model_ii - 6.0).abs() < f64::EPSILON);
        assert!(report.throughput_gops > 0.3);
        assert!(report.latency_ns > 0.0);
        assert!(report.to_string().contains("GOPS"));
    }

    #[test]
    fn fixed_depth_overlays_use_depth_eight() {
        let compiled = Compiler::new(FuVariant::V3)
            .compile_benchmark(Benchmark::Chebyshev)
            .unwrap();
        let overlay = Overlay::for_kernel(FuVariant::V3, &compiled).unwrap();
        assert_eq!(overlay.config().depth(), 8);
        assert!(overlay.check_fits(&FpgaDevice::zynq_7020()).is_ok());
    }

    #[test]
    fn context_switch_is_much_cheaper_on_writeback_overlays() {
        let v1 = Compiler::new(FuVariant::V1)
            .compile_benchmark(Benchmark::Qspline)
            .unwrap();
        let v3 = Compiler::new(FuVariant::V3)
            .compile_benchmark(Benchmark::Qspline)
            .unwrap();
        let overlay_v1 = Overlay::for_kernel(FuVariant::V1, &v1).unwrap();
        let overlay_v3 = Overlay::for_kernel(FuVariant::V3, &v3).unwrap();
        let switch_v1 = overlay_v1.context_switch(&v1);
        let switch_v3 = overlay_v3.context_switch(&v3);
        let speedup = switch_v3.speedup_over(&switch_v1);
        assert!(speedup > 1_000.0, "got {speedup:.0}x");
    }

    #[test]
    fn invalid_depth_is_surfaced_as_arch_error() {
        assert!(matches!(
            Overlay::new(FuVariant::V1, 0),
            Err(Error::Arch(_))
        ));
    }
}
