//! The unified error type of the `tm-overlay` façade.

use std::fmt;

use overlay_arch::ArchError;
use overlay_dfg::DfgError;
use overlay_frontend::FrontendError;
use overlay_scheduler::ScheduleError;
use overlay_sim::SimError;

/// Any error the overlay tool flow can produce, from kernel parsing through
/// scheduling, architecture configuration and simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// Kernel parsing or lowering failed.
    Frontend(FrontendError),
    /// The kernel graph violated a DFG invariant.
    Dfg(DfgError),
    /// Scheduling or instruction generation failed.
    Schedule(ScheduleError),
    /// The overlay configuration is invalid or does not fit the device.
    Arch(ArchError),
    /// Simulation failed.
    Sim(SimError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Frontend(err) => write!(f, "front-end error: {err}"),
            Error::Dfg(err) => write!(f, "kernel graph error: {err}"),
            Error::Schedule(err) => write!(f, "scheduling error: {err}"),
            Error::Arch(err) => write!(f, "architecture error: {err}"),
            Error::Sim(err) => write!(f, "simulation error: {err}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Frontend(err) => Some(err),
            Error::Dfg(err) => Some(err),
            Error::Schedule(err) => Some(err),
            Error::Arch(err) => Some(err),
            Error::Sim(err) => Some(err),
        }
    }
}

impl From<FrontendError> for Error {
    fn from(err: FrontendError) -> Self {
        Error::Frontend(err)
    }
}

impl From<DfgError> for Error {
    fn from(err: DfgError) -> Self {
        Error::Dfg(err)
    }
}

impl From<ScheduleError> for Error {
    fn from(err: ScheduleError) -> Self {
        Error::Schedule(err)
    }
}

impl From<ArchError> for Error {
    fn from(err: ArchError) -> Self {
        Error::Arch(err)
    }
}

impl From<SimError> for Error {
    fn from(err: SimError) -> Self {
        Error::Sim(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_sub_error_converts_and_chains() {
        use std::error::Error as _;
        let err: Error = DfgError::NoOutputs.into();
        assert!(err.source().is_some());
        assert!(err.to_string().contains("kernel graph"));
        let err: Error = ArchError::InvalidDepth { depth: 0 }.into();
        assert!(err.to_string().contains("architecture"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync + 'static>() {}
        assert_bounds::<Error>();
    }
}
